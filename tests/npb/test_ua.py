"""Tests for the UA mini-app (adaptive octree heat transfer)."""

import numpy as np
import pytest

from repro.npb.ua import UAMini


class TestMesh:
    def test_initial_uniform_mesh(self):
        m = UAMini(base_level=2, max_level=2)
        assert m.ncells == 64  # 4^3

    def test_refinement_near_source(self):
        m = UAMini(base_level=2, max_level=4)
        assert m.ncells > 64
        assert m.max_depth > 2

    def test_refined_cells_cover_same_volume(self):
        m = UAMini(base_level=2, max_level=4)
        vols = sum(m.cell_size(k) ** 3 for k in m.keys)
        assert vols == pytest.approx(1.0, rel=1e-12)

    def test_mesh_adapts_as_source_moves(self):
        """'irregular, dynamic memory accesses': the leaf set changes as
        the heat source orbits."""
        m = UAMini(base_level=2, max_level=4, adapt_every=1)
        before = set(m.keys)
        for _ in range(8):
            m.step(dt=0.02)
        after = set(m.keys)
        assert before != after

    def test_neighbor_table_shape(self):
        m = UAMini(base_level=2, max_level=3)
        nbr, valid = m.build_neighbor_table()
        assert nbr.shape == (m.ncells, 6)
        assert valid.shape == (m.ncells, 6)
        # interior cells have all six neighbors
        assert valid.sum() > 0

    def test_neighbor_indices_in_range(self):
        m = UAMini(base_level=2, max_level=4)
        nbr, valid = m.build_neighbor_table()
        assert np.all(nbr[valid] >= 0)
        assert np.all(nbr[valid] < m.ncells)


class TestPhysics:
    def test_heat_grows_with_source(self):
        m = UAMini(base_level=2, max_level=3)
        h0 = m.total_heat()
        m.run(10)
        assert m.total_heat() > h0

    def test_values_stay_bounded_nonnegative(self):
        m = UAMini(base_level=2, max_level=4)
        stats = m.run(30)
        assert stats["min"] >= 0.0
        assert np.isfinite(stats["max"])

    def test_no_source_diffusion_smooths(self):
        m = UAMini(base_level=2, max_level=2, source_amp=0.0)
        # seed a hot spot, diffuse with insulated boundaries
        m.values[0] = 1.0
        spread0 = m.values.max() - m.values.min()
        for _ in range(40):
            m.step(dt=0.05)
        assert m.values.max() - m.values.min() < spread0
        assert m.values.min() > 0.0  # heat spreads everywhere

    def test_run_returns_stats(self):
        stats = UAMini(base_level=2, max_level=3).run(5)
        assert set(stats) == {"cells", "total_heat", "max", "min"}

    def test_validation(self):
        with pytest.raises(ValueError):
            UAMini(base_level=2, max_level=1)
        with pytest.raises(ValueError):
            UAMini().run(0)
