"""Tests for the LU mini-app (SSOR with wavefront sweeps)."""

import numpy as np
import pytest

from repro.npb.lu import LUMini


class TestSSOR:
    def test_residual_decreases_monotonically(self):
        m = LUMini(n=8)
        hist = m.iterate(15)
        assert all(b < a for a, b in zip(hist, hist[1:]))

    def test_converges_to_direct_solution(self):
        m = LUMini(n=8)
        m.iterate(40)
        ref = m.solve_direct()
        assert np.abs(m.u - ref).max() < 1e-8

    def test_operator_consistency(self):
        # the wavefront sweeps and the dense operator agree: at the
        # direct solution the residual is ~0
        m = LUMini(n=6)
        m.u = m.solve_direct()
        assert m.residual() < 1e-10

    def test_omega_range(self):
        with pytest.raises(ValueError):
            LUMini(n=6, omega=2.5)
        with pytest.raises(ValueError):
            LUMini(n=6, omega=0.0)

    def test_overrelaxation_beats_gauss_seidel(self):
        gs = LUMini(n=8, omega=1.0)
        sor = LUMini(n=8, omega=1.2)  # the NPB LU setting
        r_gs = gs.iterate(10)[-1]
        r_sor = sor.iterate(10)[-1]
        assert r_sor < r_gs

    def test_wavefront_planes_partition_grid(self):
        m = LUMini(n=5)
        total = sum(len(p[0]) for p in m._planes)
        assert total == 5**3
        # plane k holds points with i+j+k == k
        for lvl, pts in enumerate(m._planes):
            i, j, k = pts
            if len(i):
                assert np.all(i + j + k == lvl)

    def test_iterate_validation(self):
        with pytest.raises(ValueError):
            LUMini(n=6).iterate(0)
