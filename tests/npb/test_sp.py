"""Tests for the SP mini-app (scalar pentadiagonal ADI)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.npb.sp import NCOMP, SPMini, penta_thomas


def _dense(bands, rhs, line):
    n = rhs.shape[1]
    a = np.zeros((n, n))
    for k in range(n):
        for off, col in zip(range(-2, 3), range(5)):
            if 0 <= k + off < n:
                a[k, k + off] = bands[line, k, col]
    return np.linalg.solve(a, rhs[line])


def _random_penta(nlines, n, seed=0):
    rng = np.random.default_rng(seed)
    bands = rng.standard_normal((nlines, n, 5)) * 0.1
    bands[:, :, 2] += 3.0
    rhs = rng.standard_normal((nlines, n))
    return bands, rhs


class TestPentaThomas:
    def test_matches_dense(self):
        bands, rhs = _random_penta(3, 11)
        x = penta_thomas(bands, rhs)
        for line in range(3):
            assert np.allclose(x[line], _dense(bands, rhs, line), atol=1e-11)

    @given(st.integers(min_value=3, max_value=40))
    @settings(max_examples=25, deadline=None)
    def test_sizes_property(self, n):
        bands, rhs = _random_penta(2, n, seed=n)
        x = penta_thomas(bands, rhs)
        assert np.allclose(x[0], _dense(bands, rhs, 0), atol=1e-9)

    def test_tridiagonal_special_case(self):
        # zero outer bands reduce to the classic Thomas algorithm
        bands, rhs = _random_penta(1, 10)
        bands[:, :, 0] = 0.0
        bands[:, :, 4] = 0.0
        x = penta_thomas(bands, rhs)
        assert np.allclose(x[0], _dense(bands, rhs, 0), atol=1e-11)

    def test_validation(self):
        bands, rhs = _random_penta(2, 8)
        with pytest.raises(ValueError):
            penta_thomas(bands[:, :, :4], rhs)
        with pytest.raises(ValueError):
            penta_thomas(bands, rhs[:1])
        with pytest.raises(ValueError):
            penta_thomas(bands[:, :2], rhs[:, :2])


class TestSPMini:
    def test_residual_decreases(self):
        m = SPMini(n=10, dt=0.05)
        hist = m.run(40)
        assert hist[-1] < hist[0] / 100

    def test_converges_to_target(self):
        m = SPMini(n=10, dt=0.05)
        m.run(80)
        assert m.error() < 1e-4

    def test_components_decouple(self):
        # perturb one component; others stay at their own trajectories
        m1 = SPMini(n=8, dt=0.05)
        m2 = SPMini(n=8, dt=0.05)
        m2.u[..., 0] += 0.1
        m1.step()
        m2.step()
        assert np.allclose(m1.u[..., 1:], m2.u[..., 1:])
        assert not np.allclose(m1.u[..., 0], m2.u[..., 0])

    def test_shapes(self):
        m = SPMini(n=8)
        assert m.u.shape == (8, 8, 8, NCOMP)

    def test_validation(self):
        with pytest.raises(ValueError):
            SPMini(n=4)
