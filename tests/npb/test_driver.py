"""Tests for the unified NPB runner."""

import pytest

from repro.npb.driver import BENCHMARKS, run_benchmark


class TestDriver:
    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_class_s_all_verify(self, name):
        report = run_benchmark(name, "S")
        assert report.verified, report.banner
        assert report.seconds > 0
        assert "SUCCESSFUL" in report.banner

    def test_banner_format(self):
        report = run_benchmark("bt", "S")
        assert "BT Benchmark Completed" in report.banner
        assert "class S" in report.banner

    def test_unknown_benchmark(self):
        with pytest.raises(ValueError):
            run_benchmark("ft", "S")

    def test_unknown_class(self):
        with pytest.raises(KeyError):
            run_benchmark("ep", "Z")

    def test_case_insensitive(self):
        assert run_benchmark("EP", "S").benchmark == "ep"

    @pytest.mark.slow
    def test_ep_class_w(self):
        assert run_benchmark("ep", "W").verified
