"""Tests: derived/measured workload structure vs the class-C signatures."""

import pytest

from repro.npb.characterize import (
    bt_counts,
    cg_structure,
    ep_structure,
    lu_counts,
    signature_consistency,
    sp_counts,
)


class TestDerivedCounts:
    def test_bt_heavier_than_sp_per_point(self):
        """BT's 5x5 block solves vs SP's scalar bands: the reason BT is
        compute-bound and SP bandwidth-bound at the same grid."""
        assert bt_counts().flops_per_point_iter > (
            2 * sp_counts().flops_per_point_iter
        )

    def test_signatures_within_20_percent(self):
        for row in signature_consistency():
            assert 0.8 <= row["ratio"] <= 1.25, row


class TestMeasuredStructure:
    def test_cg_dedup_stable_across_classes(self):
        s = cg_structure("S")
        w = cg_structure("W")
        assert s["dedup_factor"] == pytest.approx(0.87, abs=0.03)
        assert w["dedup_factor"] == pytest.approx(0.90, abs=0.03)

    def test_cg_nnz_per_row_far_above_nonzer(self):
        """The outer products densify rows well beyond the nominal
        'nonzeros' parameter — class C's '15 non-zeros' input yields
        ~200+ per row, which is what the SpMV traffic model prices."""
        s = cg_structure("S")
        assert s["nnz_per_row"] > 5 * 7  # class S nonzer = 7

    def test_ep_acceptance_is_pi_over_4(self):
        import math

        got = ep_structure(log2_pairs=18)["acceptance_rate"]
        assert got == pytest.approx(math.pi / 4, abs=3e-3)

    def test_unknown_class(self):
        with pytest.raises(ValueError):
            cg_structure("Z")
