"""ECM composition, catalog consistency, JSON document, CLI parsing."""

import pytest

from repro.ecm.model import (
    ECM_DEFAULT_TOLERANCE,
    ECM_TOLERANCES,
    ecm_tolerance,
    predict_kernel,
    prediction_to_json,
)
from repro.kernels.catalog import ALL_KERNEL_NAMES, SUITE_KERNEL_NAMES


class TestCatalog:
    def test_every_kernel_has_a_stated_tolerance(self):
        assert set(ECM_TOLERANCES) == set(ALL_KERNEL_NAMES)
        assert all(0 < t < 1 for t in ECM_TOLERANCES.values())

    def test_spmv_names_stay_in_sync_with_the_package(self):
        """catalog duplicates the spmv names as a literal (so listing
        kernels never imports numpy); the duplicate must match."""
        from repro.kernels.catalog import _SPMV_NAMES
        from repro.spmv.kernels import SPMV_KERNEL_NAMES

        assert _SPMV_NAMES == SPMV_KERNEL_NAMES

    def test_catalog_is_suite_plus_spmv(self):
        assert len(ALL_KERNEL_NAMES) == len(set(ALL_KERNEL_NAMES))
        assert set(SUITE_KERNEL_NAMES) < set(ALL_KERNEL_NAMES)

    def test_unknown_kernel_uses_default_tolerance(self):
        assert ecm_tolerance("no_such_kernel") == ECM_DEFAULT_TOLERANCE


class TestComposition:
    def test_a64fx_composes_additively(self):
        pred = predict_kernel("spmv_sell", "fujitsu")
        assert not pred.mem_overlap
        assert pred.cycles_per_iter == pytest.approx(
            pred.t_comp_cycles + pred.t_data_cycles)
        assert pred.composition() == "T_comp + sum(T_data)"

    def test_x86_composition_is_the_overlap_max(self):
        pred = predict_kernel("spmv_sell", "intel")
        assert pred.mem_overlap
        t_ol = pred.quality_factor * max(
            pred.incore.t_ol, pred.incore.issue_cycles,
            pred.incore.chain_cycles, pred.incore.window_cycles)
        t_nol = pred.quality_factor * pred.incore.t_nol
        assert pred.cycles_per_iter == pytest.approx(
            max(t_ol, t_nol + pred.t_data_cycles))
        assert pred.cycles_per_iter <= (
            pred.t_comp_cycles + pred.t_data_cycles)
        assert pred.composition() == "max(T_OL, T_nOL + sum(T_data))"

    def test_x86_overlap_saves_when_arithmetic_dominates(self):
        """On the catalog's memory kernels the load pipes dominate the
        in-core time, so overlap degenerates to the additive sum.  A
        compute-heavy loop that still streams from memory shows the
        strict saving: arithmetic hides behind the transfers."""
        from repro.compilers.codegen import compile_loop
        from repro.compilers.ir import (
            ArrayInfo, Call, Const, Load, Loop, LoopIdx, Store,
        )
        from repro.compilers.toolchains import get_toolchain
        from repro.ecm.model import predict_compiled
        from repro.machine.microarch import SKYLAKE_6140
        from repro.machine.systems import get_system

        mib = 64 * 1024 * 1024.0
        loop = Loop(
            name="powstream",
            length=1 << 22,
            body=(Store("y", Call("pow", (Load("x", index=LoopIdx()),
                                          Const(2.0))),
                        index=LoopIdx()),),
            arrays={"x": ArrayInfo("x", footprint=mib, pattern="contig"),
                    "y": ArrayInfo("y", footprint=mib, pattern="contig")},
        )
        compiled = compile_loop(loop, get_toolchain("intel"), SKYLAKE_6140)
        pred = predict_compiled(compiled, get_system("skylake"))
        assert pred.mem_overlap
        assert pred.t_data_cycles > 0
        assert pred.cycles_per_iter < (
            pred.t_comp_cycles + pred.t_data_cycles)

    def test_l1_resident_kernel_has_no_data_term(self):
        pred = predict_kernel("simple", "fujitsu")
        assert pred.t_data_cycles == 0.0
        assert pred.cycles_per_iter == pytest.approx(pred.t_comp_cycles)

    def test_memory_bound_kernel_reports_the_hot_stream(self):
        pred = predict_kernel("spmv_crs", "fujitsu")
        assert pred.bound.startswith("data:")

    def test_seconds_scale_with_problem_size(self):
        small = predict_kernel("stencil2d", "fujitsu", n=1 << 16)
        large = predict_kernel("stencil2d", "fujitsu", n=1 << 22)
        assert large.seconds > small.seconds

    def test_prediction_is_deterministic(self):
        a = predict_kernel("spmv_sell", "gnu")
        b = predict_kernel("spmv_sell", "gnu")
        assert a.cycles_per_iter == b.cycles_per_iter
        assert a.seconds == b.seconds


class TestJsonDocument:
    def test_schema_and_required_keys(self):
        doc = prediction_to_json(predict_kernel("spmv_crs", "fujitsu"))
        assert doc["schema"] == "repro.ecm/1"
        for key in ("kernel", "toolchain", "system", "composition",
                    "incore", "streams", "t_comp_cycles", "t_data_cycles",
                    "cycles_per_iter", "cycles_per_element", "seconds",
                    "bound"):
            assert key in doc
        assert doc["incore"]["t_comp"] >= doc["incore"]["t_ol"]
        assert doc["microseconds"] == pytest.approx(doc["seconds"] * 1e6)

    def test_document_is_json_serializable(self):
        import json

        for kernel in ("simple", "stencil3d"):
            doc = prediction_to_json(predict_kernel(kernel, "intel"))
            assert json.loads(json.dumps(doc)) == doc


class TestCli:
    @pytest.mark.parametrize("argv", [
        ["ecm", "simple"],
        ["ecm", "spmv_sell", "fujitsu", "--json"],
        ["ecm", "stencil3d", "intel", "--compare"],
        ["ecm", "spmv_crs", "--system", "ookami", "--n", "4096"],
        ["profile", "spmv_crs", "fujitsu"],
        ["asm", "stencil2d", "gnu"],
        ["pipeline", "spmv_sell", "fujitsu"],
        ["bench", "--quick", "--tier", "ecm"],
    ])
    def test_parse_command_accepts(self, argv):
        from repro.__main__ import parse_command

        assert parse_command(argv) == argv[0]

    @pytest.mark.parametrize("argv", [
        ["ecm"],
        ["ecm", "nope"],
        ["ecm", "simple", "nope"],
        ["ecm", "simple", "--n"],
        ["ecm", "simple", "--frobnicate"],
        ["bench", "--tier", "nope"],
        ["profile", "simple", "--compare"],
    ])
    def test_parse_command_rejects(self, argv):
        from repro.__main__ import parse_command

        with pytest.raises(ValueError):
            parse_command(argv)

    def test_ecm_command_renders_a_breakdown(self, capsys):
        from repro.__main__ import main

        assert main(["ecm", "spmv_sell"]) == 0
        out = capsys.readouterr().out
        assert "T_comp" in out and "sum(T_data)" in out
        assert "non-overlapping" in out

    def test_ecm_compare_exit_code_tracks_tolerance(self, capsys):
        from repro.__main__ import main

        assert main(["ecm", "simple", "fujitsu", "--compare"]) == 0
        assert "deviation" in capsys.readouterr().out

    def test_ecm_json_document(self, capsys):
        import json

        from repro.__main__ import main

        assert main(["ecm", "stencil2d", "--json", "--compare"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.ecm/1"
        assert doc["within_tolerance"] is True
