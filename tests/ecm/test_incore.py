"""Analytical in-core bounds: lower-bound property vs the simulator."""

import pytest

from repro.compilers.codegen import compile_loop
from repro.compilers.toolchains import get_toolchain
from repro.ecm.incore import analyze_stream
from repro.engine.scheduler import PipelineScheduler
from repro.kernels.catalog import ALL_KERNEL_NAMES, build_kernel
from repro.machine.microarch import A64FX, SKYLAKE_6140


def _compiled(kernel: str, tc_name: str):
    tc = get_toolchain(tc_name)
    march = SKYLAKE_6140 if tc.target == "x86" else A64FX
    return compile_loop(build_kernel(kernel), tc, march), march


class TestLowerBoundProperty:
    @pytest.mark.parametrize("kernel", ALL_KERNEL_NAMES)
    @pytest.mark.parametrize("tc_name", ["fujitsu", "intel"])
    def test_t_comp_tracks_the_simulated_schedule_from_below(
            self, kernel, tc_name):
        """The issue/chain bounds are true lower bounds; the port and
        window bounds may overshoot the simulator by a few percent (see
        the module docstring), so the composed T_comp must stay within
        10% above the simulated steady state on the whole catalog."""
        compiled, march = _compiled(kernel, tc_name)
        summary = analyze_stream(compiled.stream, march)
        sched = PipelineScheduler(march).steady_state(compiled.stream)
        assert summary.t_comp <= sched.cycles_per_iter * 1.10, (
            f"{kernel}/{tc_name}: analytical {summary.t_comp} > "
            f"1.10 x simulated {sched.cycles_per_iter}"
        )


class TestBoundStructure:
    def test_issue_bound_is_instrs_over_width(self):
        compiled, march = _compiled("simple", "fujitsu")
        summary = analyze_stream(compiled.stream, march)
        assert summary.issue_cycles == pytest.approx(
            summary.n_instrs / march.issue_width)

    def test_port_pressure_conserves_throughput(self):
        """Greedy placement distributes exactly the total reciprocal
        throughput over the pipes — nothing is lost or duplicated."""
        compiled, march = _compiled("gather", "fujitsu")
        summary = analyze_stream(compiled.stream, march)
        total_rtp = 0.0
        for ins in compiled.stream.body:
            t = march.timing(ins.op)
            total_rtp += (ins.rtput_override
                          if ins.rtput_override is not None else t.rtput)
        assert sum(summary.port_cycles.values()) == pytest.approx(total_rtp)

    def test_window_shrinks_the_chainless_latency_penalty(self):
        """A larger reorder window hides more of the critical path."""
        compiled, march = _compiled("sin", "fujitsu")
        small = analyze_stream(compiled.stream, march, window=32)
        large = analyze_stream(compiled.stream, march, window=512)
        assert large.window_cycles < small.window_cycles

    def test_reduction_carries_a_chain_bound(self):
        """SpMV's y accumulator is loop-carried, so the recurrence bound
        must be strictly positive."""
        compiled, march = _compiled("spmv_crs", "fujitsu")
        summary = analyze_stream(compiled.stream, march)
        assert summary.chain_cycles > 0.0

    def test_named_bound_matches_the_max(self):
        for kernel in ("simple", "sin", "spmv_sell"):
            compiled, march = _compiled(kernel, "fujitsu")
            summary = analyze_stream(compiled.stream, march)
            assert summary.bound in (
                "issue", "chain", "window",
            ) or summary.bound.startswith("port:")
            assert summary.t_comp == max(
                summary.t_ol, summary.t_nol, summary.issue_cycles,
                summary.chain_cycles, summary.window_cycles)

    def test_empty_stream_rejected(self):
        from repro.machine.isa import InstructionStream

        with pytest.raises(ValueError):
            analyze_stream(InstructionStream(body=[], label="empty"), A64FX)
