"""ECM-vs-engine reconciliation: every kernel, bounded deviation."""

import pytest

from repro.compilers.toolchains import TOOLCHAINS
from repro.ecm.model import compare_kernel, ecm_tolerance
from repro.kernels.catalog import ALL_KERNEL_NAMES
from repro.validate.fuzz import (
    ECM_FUZZ_RATIO_HIGH,
    ECM_FUZZ_RATIO_LOW,
    check_ecm_seed,
)
from repro.validate.reconcile import check_ecm, run_ecm_pass


class TestPerKernelDeviation:
    @pytest.mark.parametrize("kernel", ALL_KERNEL_NAMES)
    @pytest.mark.parametrize("toolchain", sorted(TOOLCHAINS))
    def test_deviation_within_stated_tolerance(self, kernel, toolchain):
        """The headline acceptance: on every Fig. 1/2 kernel and every
        SpMV/stencil workload, under every toolchain, the analytical
        prediction stays within the per-kernel bound of the engine."""
        cmp = compare_kernel(kernel, toolchain)
        assert cmp.within_tolerance, (
            f"{kernel}/{toolchain}: deviation {cmp.deviation:+.1%} "
            f"exceeds {cmp.tolerance:.0%}"
        )

    def test_deviation_is_a_real_comparison(self):
        cmp = compare_kernel("spmv_sell", "fujitsu")
        assert cmp.engine_seconds > 0
        assert cmp.prediction.seconds > 0
        assert cmp.tolerance == ecm_tolerance("spmv_sell")


class TestValidationPass:
    def test_run_ecm_pass_covers_the_full_grid(self):
        result = run_ecm_pass()
        assert result.name == "ecm"
        assert result.checked == len(ALL_KERNEL_NAMES) * len(TOOLCHAINS)
        assert result.ok, [str(v) for v in result.violations]

    def test_check_ecm_reports_breaches_with_location(self):
        # force an impossible tolerance through a tightened comparison
        from repro.validate.reconcile import Violation  # noqa: F401
        from unittest import mock

        with mock.patch(
            "repro.ecm.model.ECM_TOLERANCES", {"spmv_sell": 1e-9}
        ):
            violations = check_ecm("spmv_sell", "fujitsu")
        assert len(violations) == 1
        assert violations[0].rule == "ecm.deviation"
        assert "spmv_sell" in violations[0].where

    def test_validate_all_includes_the_ecm_pass(self):
        from repro.validate.runner import validate_all

        report = validate_all(seeds=2, bands=False)
        assert "ecm" in [p.name for p in report.passes]


class TestFuzzEnvelope:
    def test_envelope_constants_frame_the_composition_ceiling(self):
        # upper edge: additive composition is at most 2x the roofline
        # max (shared memory pricing), plus bounded in-core headroom
        assert 2.0 <= ECM_FUZZ_RATIO_HIGH <= 2.5
        assert 0.0 < ECM_FUZZ_RATIO_LOW < 1.0

    @pytest.mark.parametrize("seed", range(1000, 1020))
    def test_shipped_seed_range_stays_inside_the_envelope(self, seed):
        assert check_ecm_seed(seed) == []

    def test_worst_case_seed_sits_exactly_on_the_edge(self):
        """Seed 1076 reaches the theoretical +100% worst case (compute
        and memory tie); the inclusive envelope must admit it."""
        assert check_ecm_seed(1076) == []
