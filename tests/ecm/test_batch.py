"""Vectorized ECM batches: bit-exactness against the scalar model."""

import pytest

from repro.compilers.codegen import compile_loop
from repro.compilers.toolchains import TOOLCHAINS, get_toolchain
from repro.ecm.batch import clear_ecm_memos, predict_batch
from repro.ecm.model import predict_compiled
from repro.kernels.catalog import build_kernel
from repro.machine.microarch import A64FX, SKYLAKE_6140
from repro.machine.numa import PagePlacement
from repro.machine.systems import get_system
from repro.perf.profile import default_system_for

KERNELS = ("simple", "gather", "sqrt", "spmv_crs", "stencil2d")
WINDOWS = (None, 2, 8, 24, 96)


@pytest.fixture(autouse=True)
def fresh_memos():
    clear_ecm_memos()
    yield
    clear_ecm_memos()


def _items():
    """A mixed (compiled, system, window) grid across marches."""
    items = []
    for kernel in KERNELS:
        for tc_name in sorted(TOOLCHAINS):
            tc = get_toolchain(tc_name)
            march = SKYLAKE_6140 if tc.target == "x86" else A64FX
            compiled = compile_loop(build_kernel(kernel), tc, march)
            system = get_system(default_system_for(tc_name))
            for window in WINDOWS:
                items.append((compiled, system, window))
    return items


class TestBitExactness:
    def test_matches_predict_compiled(self):
        items = _items()
        batch = predict_batch(items)
        for (compiled, system, window), pred in zip(items, batch):
            scalar = predict_compiled(compiled, system, window=window)
            assert pred == scalar

    @pytest.mark.parametrize("kwargs", [
        {"allcore": True},
        {"active_cores_per_domain": 4},
        {"placement": PagePlacement.SINGLE_DOMAIN},
        {"allcore": True, "active_cores_per_domain": 12,
         "placement": PagePlacement.SINGLE_DOMAIN},
    ])
    def test_keyword_variants_match(self, kwargs):
        items = _items()[::5]
        batch = predict_batch(items, **kwargs)
        for (compiled, system, window), pred in zip(items, batch):
            scalar = predict_compiled(
                compiled, system, window=window, **kwargs)
            assert pred == scalar

    def test_warm_memos_stay_exact(self):
        """Second pass (memo hits) returns the same predictions."""
        items = _items()[:10]
        cold = predict_batch(items)
        warm = predict_batch(items)
        assert cold == warm

    def test_exact_after_memo_clear(self):
        items = _items()[:10]
        before = predict_batch(items)
        clear_ecm_memos()
        assert predict_batch(items) == before


class TestEdges:
    def test_empty_batch(self):
        assert predict_batch([]) == []

    def test_single_item(self):
        tc = get_toolchain("fujitsu")
        compiled = compile_loop(build_kernel("simple"), tc, A64FX)
        system = get_system("ookami")
        [pred] = predict_batch([(compiled, system, None)])
        assert pred == predict_compiled(compiled, system)

    def test_order_is_item_order(self):
        items = _items()[:6]
        batch = predict_batch(items)
        flipped = predict_batch(items[::-1])
        assert batch == flipped[::-1]
