"""Pass 3 (counter reconciliation): forged totals are detected."""

from repro.perf.counters import CounterSet
from repro.perf.profile import profile_kernel
from repro.validate.reconcile import (
    check_counters,
    check_profile,
    check_sweep_merge,
    run_counter_pass,
)


def _rules(violations):
    return {v.rule for v in violations}


class TestPristine:
    def test_counter_pass_clean(self):
        result = run_counter_pass()
        assert result.ok, [str(v) for v in result.violations]
        assert result.checked == 7

    def test_profile_reconciles(self):
        assert check_profile(profile_kernel("gather", "fujitsu")) == []

    def test_sweep_merge_exact(self):
        assert check_sweep_merge() == []

    def test_empty_counters_clean(self):
        assert check_counters(CounterSet("empty")) == []


class TestForgedTotals:
    def _profiled(self):
        return profile_kernel("simple", "fujitsu").counters

    def test_forged_slot_total_fires(self):
        c = self._profiled()
        c.inc("pipeline.issue_slots.total", 100.0)
        assert "counters.slots.identity" in _rules(check_counters(c))

    def test_forged_instruction_count_fires_mix_sum(self):
        c = self._profiled()
        c.inc("pipeline.instructions", 7.0)
        found = check_counters(c)
        assert "counters.instr_mix.sum" in _rules(found)

    def test_forged_cache_hits_fire_level_chain(self):
        prof = profile_kernel("simple", "fujitsu")
        prof.counters.inc("memory.levels.L1.misses", 64.0)
        assert "counters.levels.chain" in _rules(check_profile(prof))

    def test_forged_cachesim_hits_fire_identity(self):
        c = CounterSet("forged")
        c.inc("cachesim.accesses", 100.0)
        c.inc("cachesim.hits", 90.0)
        c.inc("cachesim.misses", 5.0)  # 95 != 100
        assert "counters.cachesim.identity" in _rules(check_counters(c))

    def test_evictions_above_misses_fire(self):
        c = CounterSet("forged")
        c.inc("cachesim.accesses", 10.0)
        c.inc("cachesim.hits", 5.0)
        c.inc("cachesim.misses", 5.0)
        c.inc("cachesim.evictions", 6.0)
        assert "counters.cachesim.evictions" in _rules(check_counters(c))

    def test_broken_roofline_split_fires(self):
        c = CounterSet("forged")
        c.inc("exec.seconds", 2.0)
        c.inc("exec.hidden_seconds", 0.5)
        c.inc("exec.compute_seconds", 2.0)
        c.inc("exec.memory_seconds", 1.0)  # 2.5 != 3.0
        assert "counters.exec.split" in _rules(check_counters(c))

    def test_forged_instr_mix_fires_recount(self):
        prof = profile_kernel("simple", "fujitsu")
        key = next(k for k in prof.counters
                   if k.startswith("pipeline.instr_mix."))
        prof.counters.inc(key, 3.0)
        found = check_profile(prof)
        assert "counters.instr_mix.recount" in _rules(found)

    def test_violation_pinpoints_the_counter(self):
        c = CounterSet("scope-x")
        c.inc("cachesim.accesses", 1.0)
        c.inc("cachesim.misses", 5.0)
        (violation,) = check_counters(c, label="scope-x")
        assert violation.rule == "counters.cachesim.identity"
        assert violation.where == "scope-x"
        assert "5" in violation.detail
