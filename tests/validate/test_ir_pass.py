"""Pass 1 (IR verifier): pristine tree is clean, seeded defects fire."""

import dataclasses

import pytest

from repro.compilers.codegen import compile_loop
from repro.compilers.ir import (
    ArrayInfo,
    BinOp,
    Call,
    Cmp,
    Const,
    Load,
    Loop,
    LoopIdx,
    Store,
)
from repro.compilers.toolchains import TOOLCHAINS
from repro.kernels.loops import build_loop
from repro.machine.microarch import A64FX
from repro.validate.ir import run_ir_pass, verify_compiled, verify_loop


def _rules(violations):
    return {v.rule for v in violations}


def _simple_loop(**overrides):
    fields = dict(
        name="t",
        length=1024,
        body=(Store("y", BinOp("*", Load("x"), Const(2.0))),),
        arrays={
            "x": ArrayInfo("x", footprint=8192.0),
            "y": ArrayInfo("y", footprint=8192.0),
        },
    )
    fields.update(overrides)
    return Loop(**fields)


class TestVerifyLoop:
    def test_pristine_suite_is_clean(self):
        result = run_ir_pass()
        assert result.ok, [str(v) for v in result.violations]
        assert result.checked == 55  # 11 loops x 5 toolchains

    def test_clean_loop_passes(self):
        assert verify_loop(_simple_loop()) == []

    def test_one_arg_pow_fires_arity(self):
        loop = _simple_loop(
            body=(Store("y", Call("pow", (Load("x"),))),),
        )
        found = verify_loop(loop)
        assert "ir.call.arity" in _rules(found)
        assert any("pow" in v.detail for v in found)

    def test_cmp_as_operand_fires_type_check(self):
        # Cmp is only legal as a Store mask; the frozen dataclasses are
        # happy to hold it as a BinOp operand
        bad = BinOp("+", Cmp("<", Load("x"), Const(0.0)), Const(1.0))
        loop = _simple_loop(body=(Store("y", bad),))
        assert "ir.expr.type" in _rules(verify_loop(loop))

    def test_missing_array_info_fires(self):
        # the constructor rejects this up front, so forge it past the
        # frozen dataclass the way a buggy transform would
        loop = _simple_loop()
        object.__setattr__(loop, "arrays", {"y": loop.arrays["y"]})
        found = verify_loop(loop)
        assert "ir.array.info" in _rules(found)
        assert any("x" in v.detail or "x" in v.where for v in found)

    def test_two_level_index_fires(self):
        deep = Load("x", index=Load("idx", index=Load("idx2")))
        loop = _simple_loop(
            body=(Store("y", deep),),
            arrays={
                "x": ArrayInfo("x", footprint=8192.0, pattern="random"),
                "y": ArrayInfo("y", footprint=8192.0),
                "idx": ArrayInfo("idx", footprint=8192.0),
                "idx2": ArrayInfo("idx2", footprint=8192.0),
            },
        )
        assert "ir.load.index" in _rules(verify_loop(loop))


class TestVerifyCompiled:
    @pytest.fixture()
    def compiled(self):
        return compile_loop(build_loop("simple"), TOOLCHAINS["fujitsu"],
                            A64FX)

    def test_clean_compile_passes(self, compiled):
        assert verify_compiled(compiled) == []

    def test_tampered_elements_per_iter_fires(self, compiled):
        compiled.stream.elements_per_iter += 1
        found = verify_compiled(compiled)
        assert "lower.unroll.bookkeeping" in _rules(found)

    def test_forged_mem_stream_bytes_fires(self, compiled):
        forged = tuple(
            dataclasses.replace(s, bytes_per_iter=s.bytes_per_iter * 2)
            for s in compiled.mem_streams
        )
        compiled.mem_streams = forged
        assert "lower.memstream.bytes" in _rules(verify_compiled(compiled))

    def test_dropped_mem_stream_fires(self, compiled):
        compiled.mem_streams = compiled.mem_streams[:-1]
        assert "lower.memstream.set" in _rules(verify_compiled(compiled))

    def test_negative_latency_override_fires(self, compiled):
        body = compiled.stream.body
        body[0] = dataclasses.replace(body[0], latency_override=-1.0)
        assert "lower.instr.override" in _rules(verify_compiled(compiled))

    def test_deleted_load_fires_access_count(self, compiled):
        body = compiled.stream.body
        idx = next(i for i, ins in enumerate(body)
                   if ins.tag.startswith("load "))
        del body[idx]
        found = verify_compiled(compiled)
        assert "lower.access.loads" in _rules(found)
