"""Pass 2 (scheduler invariants): tampered event logs are pinpointed."""

import dataclasses

import pytest

from repro.compilers.codegen import compile_loop
from repro.compilers.toolchains import TOOLCHAINS
from repro.engine.executor import KernelExecutor
from repro.engine.scheduler import PipelineScheduler
from repro.kernels.loops import build_loop
from repro.machine.microarch import A64FX
from repro.machine.systems import get_system
from repro.validate.report import ValidationError
from repro.validate.schedule import (
    ScheduleInvariantChecker,
    check_kernel_run,
    check_record,
    run_schedule_pass,
)


def _rules(violations):
    return {v.rule for v in violations}


def _capture_record(loop_name="simple", toolchain="fujitsu"):
    """Simulate one loop with an observing checker; return its record."""
    compiled = compile_loop(build_loop(loop_name), TOOLCHAINS[toolchain],
                            A64FX)
    records = []
    from repro.engine.scheduler import (
        add_schedule_observer,
        remove_schedule_observer,
    )

    add_schedule_observer(records.append)
    try:
        PipelineScheduler(A64FX).steady_state(compiled.stream)
    finally:
        remove_schedule_observer(records.append)
    assert len(records) == 1
    return records[0]


class TestPristine:
    def test_suite_schedules_and_runs_clean(self):
        result = run_schedule_pass(loops=("simple", "gather", "exp"))
        assert result.ok, [str(v) for v in result.violations]
        assert result.checked == 3 * 5 * 2  # loops x toolchains x (sched+run)

    def test_captured_record_is_clean(self):
        assert check_record(_capture_record()) == []


class TestTamperedEventLogs:
    def test_swapped_cycles_fire_monotonicity(self):
        record = _capture_record()
        issues = list(record.issues)
        # pick two events with different cycles and swap their order
        i = next(i for i in range(1, len(issues))
                 if issues[i][1] != issues[i - 1][1])
        issues[i - 1], issues[i] = issues[i], issues[i - 1]
        forged = dataclasses.replace(record, issues=tuple(issues))
        assert "sched.cycle.monotone" in _rules(check_record(forged))

    def test_duplicate_issue_fires_exactly_once(self):
        record = _capture_record()
        issues = list(record.issues)
        dup = issues[3]
        issues[4] = dup  # instruction 3 issues twice, one never issues
        forged = dataclasses.replace(record, issues=tuple(issues))
        assert "sched.issue.exactly_once" in _rules(check_record(forged))

    def test_issue_width_overflow_fires(self):
        record = _capture_record()
        width = record.march.issue_width
        cycle = record.issues[0][1]
        issues = [(d, cycle, p) for d, (_, _c, p) in
                  zip(range(width + 1), record.issues)]
        issues += list(record.issues[width + 1:])
        forged = dataclasses.replace(record, issues=tuple(issues))
        assert "sched.issue.width" in _rules(check_record(forged))

    def test_out_of_order_retire_fires_window(self):
        record = _capture_record()
        # pretend the window is 1: any instruction issued before its
        # predecessor-but-one completes becomes an out-of-order retire
        forged = dataclasses.replace(record, window=1)
        assert "sched.retire.window" in _rules(check_record(forged))

    def test_forged_result_cpi_fires_bookkeeping(self):
        record = _capture_record()
        result = dataclasses.replace(
            record.result,
            cycles_per_iter=record.result.cycles_per_iter * 1.5,
        )
        forged = dataclasses.replace(record, result=result)
        assert "sched.result.cpi" in _rules(check_record(forged))

    def test_illegal_pipe_fires(self):
        from repro.machine.isa import Pipe

        record = _capture_record()
        d, cycle, pipe = record.issues[0]
        timing = record.timings()[d % len(record.stream)]
        illegal = next(p for p in Pipe if p not in timing[2])
        issues = ((d, cycle, illegal),) + record.issues[1:]
        forged = dataclasses.replace(record, issues=issues)
        assert "sched.pipe.legal" in _rules(check_record(forged))


class TestStrictEndToEnd:
    def test_negative_latency_raises_in_strict_mode(self):
        compiled = compile_loop(build_loop("simple"), TOOLCHAINS["fujitsu"],
                                A64FX)
        body = compiled.stream.body
        body[0] = dataclasses.replace(body[0], latency_override=-2.0)
        with ScheduleInvariantChecker(strict=True):
            with pytest.raises(ValidationError) as err:
                PipelineScheduler(A64FX).steady_state(compiled.stream)
        assert any(v.rule == "sched.timing.nonneg"
                   for v in err.value.violations)

    def test_non_strict_accumulates(self):
        compiled = compile_loop(build_loop("simple"), TOOLCHAINS["fujitsu"],
                                A64FX)
        body = compiled.stream.body
        body[0] = dataclasses.replace(body[0], latency_override=-2.0)
        with ScheduleInvariantChecker(strict=False) as checker:
            PipelineScheduler(A64FX).steady_state(compiled.stream)
        assert checker.schedules_checked == 1
        assert "sched.timing.nonneg" in _rules(checker.violations)


class TestKernelRunChecks:
    def test_pristine_run_is_clean(self):
        compiled = compile_loop(build_loop("simple"), TOOLCHAINS["fujitsu"],
                                A64FX)
        sched = PipelineScheduler(A64FX).steady_state(compiled.stream)
        run = KernelExecutor(get_system("ookami")).run(
            sched, compiled.mem_streams, compiled.n_iters)
        assert check_kernel_run(run, sched, compiled.mem_streams) == []

    def test_forged_seconds_fires_roofline(self):
        compiled = compile_loop(build_loop("simple"), TOOLCHAINS["fujitsu"],
                                A64FX)
        sched = PipelineScheduler(A64FX).steady_state(compiled.stream)
        run = KernelExecutor(get_system("ookami")).run(
            sched, compiled.mem_streams, compiled.n_iters)
        forged = dataclasses.replace(run, seconds=run.seconds * 2.0)
        found = check_kernel_run(forged, sched, compiled.mem_streams)
        assert "exec.roofline.max" in _rules(found)
