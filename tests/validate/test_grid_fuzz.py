"""Differential fuzz through the grid-scale sweep fast paths.

The batched-engine fuzz lane (:mod:`tests.validate.test_batch_fuzz`)
pins ``schedule_batch`` against the scalar scheduler; this suite fuzzes
the three layers PR 8 stacked on top of it — sharded simulation across
a process pool, vectorized ECM batches, and the content-addressed
compile cache — with the same shipped seed range.  Each layer must be
an *invisible* optimization: bit-identical results, counters and cache
statistics versus the path it replaces, on randomly generated loops
rather than the curated catalog.
"""

import random

import pytest

from repro.compilers.cache import cached_compile, configure_compile_cache
from repro.compilers.codegen import compile_loop
from repro.compilers.toolchains import TOOLCHAINS
from repro.ecm.batch import clear_ecm_memos, predict_batch
from repro.ecm.model import predict_compiled
from repro.engine.batch import clear_tables, schedule_batch
from repro.engine.cache import configure
from repro.engine.scheduler import clear_memos
from repro.engine.shard import schedule_batch_sharded
from repro.machine.microarch import A64FX, SKYLAKE_6140
from repro.machine.systems import get_system
from repro.perf.profile import default_system_for
from repro.validate.fuzz import random_loop
from repro.validate.ir import verify_loop

#: the shipped regression range: seeds 1000..1024, like run_fuzz_pass()
SEEDS = tuple(range(1000, 1025))
WINDOWS = (None, 8, 48)


def _point_for(seed):
    """Replicate check_seed's deterministic (loop, toolchain) draw."""
    rng = random.Random(seed)
    loop = random_loop(rng, name=f"fuzz{seed}")
    assert verify_loop(loop) == [], f"seed {seed} generated malformed IR"
    tc = rng.choice(sorted(TOOLCHAINS.values(), key=lambda t: t.name))
    march = SKYLAKE_6140 if tc.target == "x86" else A64FX
    return loop, tc, march


@pytest.fixture(scope="module")
def fuzz_points():
    return [_point_for(seed) for seed in SEEDS]


@pytest.fixture(autouse=True)
def fresh_state():
    configure()
    configure_compile_cache()
    clear_memos()
    clear_tables()
    clear_ecm_memos()
    yield
    configure()
    configure_compile_cache()
    clear_memos()
    clear_tables()
    clear_ecm_memos()


class TestShardedFuzz:
    def test_sharded_matches_serial_batch(self, fuzz_points):
        """All fuzz lanes sharded across a pool == one serial batch."""
        reqs = []
        for loop, tc, march in fuzz_points:
            stream = compile_loop(loop, tc, march).stream
            for window in WINDOWS:
                reqs.append((march, stream, window))
        serial = schedule_batch(reqs, cache=False)
        clear_memos()
        clear_tables()
        sharded = schedule_batch_sharded(reqs, cache=False, max_workers=3)
        assert sharded == serial


class TestEcmBatchFuzz:
    def test_vectorized_matches_per_point(self, fuzz_points):
        items = []
        for loop, tc, march in fuzz_points:
            compiled = compile_loop(loop, tc, march)
            system = get_system(default_system_for(tc.name))
            for window in WINDOWS:
                items.append((compiled, system, window))
        batch = predict_batch(items)
        for (compiled, system, window), pred in zip(items, batch):
            scalar = predict_compiled(compiled, system, window=window)
            assert pred == scalar, compiled.loop.name


class TestCompileCacheFuzz:
    def test_cache_on_equals_cache_off(self, fuzz_points, monkeypatch):
        """Fuzz loops compiled twice through the cache == compiled cold
        with the cache killed, including downstream schedules."""
        monkeypatch.setenv("REPRO_COMPILE_CACHE", "off")
        cold = [compile_loop(loop, tc, march).schedule
                for loop, tc, march in fuzz_points]
        monkeypatch.delenv("REPRO_COMPILE_CACHE")
        configure()
        clear_memos()
        clear_tables()
        warm = []
        for loop, tc, march in fuzz_points:
            cached_compile(loop, tc, march)  # prime
            warm.append(cached_compile(loop, tc, march).schedule)
        assert warm == cold
