"""Machine-spec fuzz lane (repro.validate.fuzz, pass 6).

Random valid :class:`~repro.machine.spec.MachineSpec` draws must
survive the same differential oracle as the preset machines: JSON
round-trip identity, build-cache identity, and fast / full / reference
/ batched scheduler agreement on a random loop — machines that exist
only as data get no weaker guarantees than the in-code A64FX.
"""

import random

import pytest

from repro.machine.spec import MachineSpec
from repro.validate.fuzz import (
    check_machine_seed,
    random_machine_spec,
    run_machine_fuzz_pass,
)

#: the shipped regression range, like run_machine_fuzz_pass()
SEEDS = tuple(range(5000, 5010))


class TestRandomMachineSpec:
    def test_draws_are_valid_and_buildable(self):
        rng = random.Random(7)
        for i in range(10):
            spec = random_machine_spec(rng, name=f"t{i}")
            assert isinstance(spec, MachineSpec)
            march = spec.build_core()
            assert march.lanes_f64 == spec.vector_bits // 64

    def test_draws_are_deterministic(self):
        a = random_machine_spec(random.Random(42))
        b = random_machine_spec(random.Random(42))
        assert a == b
        assert a.build_core() is b.build_core()

    def test_blocking_ops_stay_blocking(self):
        """Latency jitter must preserve rtput == latency (the A64FX
        FSQRT/FDIV blocking mechanism) wherever the base had it."""
        from repro.machine.spec import MACHINE_SPECS

        bases = {s.name: s for s in MACHINE_SPECS.values()}
        rng = random.Random(3)
        for i in range(20):
            spec = random_machine_spec(rng, name=f"b{i}")
            base = next(b for name, b in bases.items()
                        if f"({name})" in spec.name)
            base_timings = {t.op: t for t in base.timings}
            for t in spec.timings:
                if base_timings[t.op].rtput == base_timings[t.op].latency:
                    assert t.rtput == t.latency, t.op

    def test_round_trip(self):
        spec = random_machine_spec(random.Random(99))
        assert MachineSpec.from_json(spec.to_json()) == spec


class TestMachineSeeds:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_seed_is_clean(self, seed):
        violations = check_machine_seed(seed)
        assert violations == [], [v.to_json() for v in violations]


class TestMachineFuzzPass:
    def test_pass_result(self):
        result = run_machine_fuzz_pass(seeds=5)
        assert result.name == "machine-fuzz"
        assert result.checked == 5
        assert result.ok

    def test_wired_into_validate_all(self):
        """validate_all must include the machine-fuzz lane (pass 6)."""
        import inspect

        from repro.validate.runner import validate_all

        assert "run_machine_fuzz_pass" in inspect.getsource(validate_all)
