"""Differential fuzz through the batched SoA engine.

The per-seed oracle in :mod:`repro.validate.fuzz` already runs every
seed through ``schedule_batch`` as a single-lane batch; this suite
routes the whole shipped seed range (25 seeds, base 1000 — the same
range ``run_fuzz_pass`` regresses) through **one** batch call, so the
fuzz streams exercise cross-lane interleaving: lanes of wildly
different lengths, marches and windows stepping in the same array
program.  Results and ``pipeline.*`` counters must stay bit-exact
against the scalar event-driven path and 1e-9-close to the frozen
reference, and the strict invariant checker must accept every
batch-recorded issue log.
"""

import random

import pytest

from repro.compilers.codegen import compile_loop
from repro.compilers.toolchains import TOOLCHAINS
from repro.engine._reference import ReferenceScheduler
from repro.engine.batch import clear_tables, schedule_batch
from repro.engine.cache import configure, get_cache
from repro.engine.scheduler import PipelineScheduler, clear_memos, schedule_on
from repro.machine.microarch import A64FX, SKYLAKE_6140
from repro.perf.counters import ProfileScope
from repro.validate.fuzz import random_loop
from repro.validate.ir import verify_loop
from repro.validate.schedule import ScheduleInvariantChecker

#: the shipped regression range: seeds 1000..1024, like run_fuzz_pass()
SEEDS = tuple(range(1000, 1025))
RTOL = 1e-9


def _point_for(seed):
    """Replicate check_seed's deterministic (loop, toolchain) draw."""
    rng = random.Random(seed)
    loop = random_loop(rng, name=f"fuzz{seed}")
    assert verify_loop(loop) == [], f"seed {seed} generated malformed IR"
    tc = rng.choice(sorted(TOOLCHAINS.values(), key=lambda t: t.name))
    march = SKYLAKE_6140 if tc.target == "x86" else A64FX
    return march, compile_loop(loop, tc, march).stream


@pytest.fixture(scope="module")
def fuzz_points():
    return [_point_for(seed) for seed in SEEDS]


@pytest.fixture(autouse=True)
def fresh_state():
    configure()
    clear_memos()
    clear_tables()
    yield
    configure()


class TestBatchFuzzDifferential:
    def test_one_batch_over_all_seeds_bit_exact(self, fuzz_points):
        """All 25 fuzz streams in one batch == per-point fast path."""
        results = schedule_batch(fuzz_points, cache=False)
        assert len(results) == len(SEEDS)
        for seed, (march, stream), res in zip(SEEDS, fuzz_points, results):
            ref = PipelineScheduler(march).steady_state(stream)
            assert res.cycles_per_iter == ref.cycles_per_iter, f"seed {seed}"
            assert res.ipc == ref.ipc, f"seed {seed}"
            assert res.pipe_occupancy == ref.pipe_occupancy, f"seed {seed}"
            assert res.bound == ref.bound, f"seed {seed}"
            assert res.label == ref.label, f"seed {seed}"

    def test_one_batch_matches_frozen_reference(self, fuzz_points):
        results = schedule_batch(fuzz_points, cache=False)
        for seed, (march, stream), res in zip(SEEDS, fuzz_points, results):
            ref = ReferenceScheduler(march).steady_state(stream)
            assert res.cycles_per_iter == pytest.approx(
                ref.cycles_per_iter, rel=RTOL), f"seed {seed}"
            assert res.bound == ref.bound, f"seed {seed}"

    def test_counter_totals_match_scalar_run(self, fuzz_points):
        """One scope over the whole batch == one scope over the same
        points scheduled one-by-one (same emissions, same order)."""
        with ProfileScope("scalar") as scalar:
            for march, stream in fuzz_points:
                PipelineScheduler(march).steady_state(stream)
        with ProfileScope("batched") as batched:
            schedule_batch(fuzz_points, cache=False)
        assert batched.as_dict() == scalar.as_dict()

    def test_cache_fronted_batch_matches_sequential(self, fuzz_points):
        """With caching on, stats equal the sequential schedule_on run
        (fuzz streams may collide content-wise across seeds)."""
        for march, stream in fuzz_points:
            schedule_on(march, stream)
        sequential = get_cache().stats()
        configure()
        schedule_batch(fuzz_points)
        assert get_cache().stats() == sequential

    def test_invariant_checker_accepts_batch_logs(self, fuzz_points):
        """Strict replay of every batch-recorded fuzz issue log."""
        with ScheduleInvariantChecker(strict=True) as checker:
            schedule_batch(fuzz_points, cache=False)
        assert checker.schedules_checked > 0
        assert checker.violations == []
