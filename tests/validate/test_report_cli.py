"""Report serialization + the ``repro validate`` CLI contract."""

import json

import pytest

from repro.__main__ import COMMANDS, main, parse_command
from repro.validate.report import (
    VALIDATE_SCHEMA,
    PassResult,
    ValidationError,
    ValidationReport,
    Violation,
)


def _sample_report(ok=True):
    passes = [PassResult(name="ir", checked=3)]
    if not ok:
        passes.append(PassResult(
            name="schedule", checked=2,
            violations=[Violation("sched.cycle.monotone", "loop 'x'",
                                  "cycle went backwards")],
        ))
    return ValidationReport(passes=passes)


class TestReport:
    def test_json_shape(self):
        doc = _sample_report(ok=False).to_json()
        assert doc["schema"] == VALIDATE_SCHEMA == "repro.validate/1"
        assert doc["ok"] is False
        names = [p["name"] for p in doc["passes"]]
        assert names == ["ir", "schedule"]
        v = doc["passes"][1]["violations"][0]
        assert v == {"rule": "sched.cycle.monotone", "where": "loop 'x'",
                     "detail": "cycle went backwards"}

    def test_json_roundtrips(self):
        text = json.dumps(_sample_report(ok=False).to_json())
        assert json.loads(text)["passes"][1]["ok"] is False

    def test_render_verdict(self):
        assert _sample_report(ok=True).render().endswith("PASS")
        assert _sample_report(ok=False).render().endswith("FAIL")

    def test_pass_named(self):
        report = _sample_report(ok=False)
        assert report.pass_named("schedule").checked == 2
        with pytest.raises(KeyError):
            report.pass_named("bands")

    def test_validation_error_carries_violations(self):
        v = Violation("ir.call.arity", "loop 'p'", "pow takes 2 args")
        err = ValidationError([v])
        assert err.violations == (v,)
        assert "ir.call.arity" in str(err)
        assert "loop 'p'" in str(err)


class TestParseCommand:
    def test_every_registered_command_is_dispatchable(self):
        # the registry and main()'s dispatch must not drift apart
        assert set(COMMANDS) == {
            "list", "run", "asm", "pipeline", "profile", "ecm", "verify",
            "bench", "cache", "validate", "serve", "serve-bench",
            "sweep", "machines",
        }

    @pytest.mark.parametrize("argv", [
        ["list"],
        ["run", "fig1", "table3"],
        ["run", "all"],
        ["asm", "simple", "fujitsu"],
        ["pipeline", "exp", "gnu"],
        ["profile", "gather", "--system", "ookami", "--n", "100000"],
        ["profile", "exp", "cray", "--json"],
        ["verify"],
        ["bench", "--quick", "--out", "BENCH.json"],
        ["cache", "show"],
        ["cache"],
        ["validate", "--seeds", "25", "--json"],
        ["validate", "--no-bands", "--out", "report.json"],
        ["cache", "show", "--json"],
        ["serve", "--stdin"],
        ["serve", "--port", "7080", "--batch-window", "2", "--max-batch",
         "64", "--workers", "4"],
        ["serve-bench", "--quick", "--out", "BENCH_serve.json"],
    ])
    def test_valid_invocations(self, argv):
        assert parse_command(argv) == argv[0]

    def test_help_is_none(self):
        assert parse_command([]) is None
        assert parse_command(["--help"]) is None

    @pytest.mark.parametrize("argv", [
        ["frobnicate"],
        ["asm", "simple"],
        ["asm", "nosuchloop", "fujitsu"],
        ["pipeline", "simple", "nosuchtc"],
        ["run", "fig99"],
        ["profile"],
        ["profile", "simple", "--n", "many"],
        ["verify", "extra"],
        ["cache", "explode"],
        ["validate", "--seeds", "many"],
        ["validate", "--frobnicate"],
        ["cache", "clear", "--json"],
        ["serve", "--port", "many"],
        ["serve", "--batch-window", "-1"],
        ["serve", "--workers", "0"],
        ["serve", "--frobnicate"],
        ["serve-bench", "--frobnicate"],
    ])
    def test_invalid_invocations(self, argv):
        with pytest.raises(ValueError):
            parse_command(argv)


class TestValidateCli:
    def test_json_report_written_and_exit_zero(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        # quick configuration: skip bands, minimal fuzz
        code = main(["validate", "--seeds", "2", "--no-bands",
                     "--out", str(out)])
        printed = capsys.readouterr().out
        assert code == 0
        assert "PASS" in printed
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro.validate/1"
        assert doc["ok"] is True
        assert [p["name"] for p in doc["passes"]] == [
            "ir", "schedule", "counters", "fuzz", "ecm", "machine-fuzz"]
        assert all(p["ok"] for p in doc["passes"])

    def test_bad_flag_exits_nonzero(self, capsys):
        assert main(["validate", "--seeds", "NaNple"]) == 1
        assert "usage" in capsys.readouterr().out
