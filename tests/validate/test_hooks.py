"""Strict-mode hooks: clean code runs untouched, defects raise inline."""

import dataclasses

import pytest

from repro.compilers.codegen import compile_loop
from repro.compilers.toolchains import TOOLCHAINS
from repro.engine.scheduler import PipelineScheduler, schedule_on
from repro.kernels.loops import build_loop
from repro.machine.microarch import A64FX
from repro.perf.counters import ProfileScope
from repro.validate.hooks import (
    install_strict_hooks,
    strict_from_env,
    strict_hooks,
    uninstall_strict_hooks,
)
from repro.validate.report import ValidationError


class TestLifecycle:
    def test_install_is_idempotent(self):
        install_strict_hooks()
        install_strict_hooks()
        try:
            compile_loop(build_loop("simple"), TOOLCHAINS["fujitsu"], A64FX)
        finally:
            uninstall_strict_hooks()
            uninstall_strict_hooks()  # second uninstall is a no-op

    def test_env_opt_in(self, monkeypatch):
        monkeypatch.delenv("REPRO_VALIDATE", raising=False)
        assert strict_from_env() is False
        monkeypatch.setenv("REPRO_VALIDATE", "1")
        assert strict_from_env() is True
        uninstall_strict_hooks()

    def test_no_observers_leak_after_context(self):
        from repro.compilers.codegen import _COMPILE_OBSERVERS
        from repro.engine.scheduler import _SCHEDULE_OBSERVERS
        from repro.perf.counters import _SCOPE_OBSERVERS

        before = (len(_COMPILE_OBSERVERS), len(_SCHEDULE_OBSERVERS),
                  len(_SCOPE_OBSERVERS))
        with strict_hooks():
            pass
        after = (len(_COMPILE_OBSERVERS), len(_SCHEDULE_OBSERVERS),
                 len(_SCOPE_OBSERVERS))
        assert before == after


class TestStrictBehaviour:
    def test_clean_pipeline_passes_under_hooks(self):
        with strict_hooks():
            compiled = compile_loop(build_loop("gather"),
                                    TOOLCHAINS["fujitsu"], A64FX)
            with ProfileScope("hooks-clean"):
                PipelineScheduler(A64FX).steady_state(compiled.stream)

    def test_forged_stream_raises_at_schedule_time(self):
        compiled = compile_loop(build_loop("simple"), TOOLCHAINS["fujitsu"],
                                A64FX)
        body = compiled.stream.body
        body[0] = dataclasses.replace(body[0], rtput_override=-0.5)
        with strict_hooks():
            with pytest.raises(ValidationError) as err:
                PipelineScheduler(A64FX).steady_state(compiled.stream)
        assert any(v.rule == "sched.timing.nonneg"
                   for v in err.value.violations)

    def test_forged_scope_counters_raise_at_exit(self):
        from repro.perf.counters import emit

        with strict_hooks():
            with pytest.raises(ValidationError) as err:
                with ProfileScope("forged"):
                    emit("cachesim.accesses", 10.0)
                    emit("cachesim.hits", 3.0)
                    emit("cachesim.misses", 3.0)  # 6 != 10
        assert any(v.rule == "counters.cachesim.identity"
                   for v in err.value.violations)

    def test_scope_unwound_by_exception_is_not_checked(self):
        with strict_hooks():
            with pytest.raises(RuntimeError, match="boom"):
                with ProfileScope("unwound") as counters:
                    counters.inc("cachesim.accesses", 10.0)
                    raise RuntimeError("boom")

    def test_cache_hits_replay_validated_payloads(self):
        # a schedule validated on the miss path re-emits its stored
        # payload on hits; the scope-exit reconciliation must still hold
        compiled = compile_loop(build_loop("exp"), TOOLCHAINS["cray"], A64FX)
        with strict_hooks():
            with ProfileScope("warm"):
                schedule_on(A64FX, compiled.stream)
            with ProfileScope("hit"):
                schedule_on(A64FX, compiled.stream)
