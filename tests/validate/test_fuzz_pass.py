"""Pass 4 (differential fuzz): 25-seed regression vs the golden model."""

import random

from repro.validate.fuzz import check_seed, random_loop, run_fuzz_pass
from repro.validate.ir import verify_loop


class TestGenerator:
    def test_deterministic_per_seed(self):
        a = random_loop(random.Random(42))
        b = random_loop(random.Random(42))
        assert a == b

    def test_seeds_differ(self):
        loops = {repr(random_loop(random.Random(s))) for s in range(20)}
        assert len(loops) > 10

    def test_generated_loops_are_well_formed(self):
        for seed in range(30):
            loop = random_loop(random.Random(seed))
            assert verify_loop(loop) == [], f"seed {seed}"


class TestDifferentialOracle:
    def test_regression_25_seeds_bit_exact(self):
        """The shipped seed range must stay clean: the fast scheduler,
        its full-simulation mode and the frozen reference agree, and
        cache hits replay identical results + counters."""
        result = run_fuzz_pass(seeds=25)
        assert result.checked == 25
        assert result.ok, [str(v) for v in result.violations]

    def test_single_seed_api(self):
        assert check_seed(1) == []
