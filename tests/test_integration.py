"""Cross-module integration tests: the full pipeline, end to end.

IR -> vectorizer -> codegen -> scheduler -> executor -> threading model,
exercised together the way the benchmark harness uses them.
"""

import pytest

import repro
from repro.compilers.codegen import compile_loop
from repro.compilers.toolchains import FUJITSU, GNU, INTEL
from repro.engine.executor import KernelExecutor
from repro.kernels.loops import build_loop
from repro.machine.microarch import A64FX
from repro.machine.systems import get_system


class TestCompileExecutePath:
    def test_l1_resident_loop_is_compute_bound(self):
        system = get_system("ookami")
        compiled = compile_loop(build_loop("simple"), FUJITSU, A64FX)
        run = KernelExecutor(system).run(
            compiled.schedule, compiled.mem_streams, compiled.n_iters
        )
        assert run.bound == "compute"
        # a few thousand elements at sub-nanosecond per element
        assert 1e-7 < run.seconds < 1e-4

    def test_spilled_loop_becomes_memory_bound(self):
        system = get_system("ookami")
        big = build_loop("simple", n=64_000_000)  # 1 GB of doubles
        compiled = compile_loop(big, FUJITSU, A64FX)
        run = KernelExecutor(system).run(
            compiled.schedule, compiled.mem_streams, compiled.n_iters
        )
        assert run.bound == "memory"

    def test_gnu_vs_fujitsu_end_to_end_on_exp(self):
        """The Section III conclusion, through the whole stack: the same
        source loop, ~20x apart after compile + schedule + execute."""
        system = get_system("ookami")
        loop = build_loop("exp")
        times = {}
        for tc in (FUJITSU, GNU):
            compiled = compile_loop(loop, tc, A64FX)
            run = KernelExecutor(system).run(
                compiled.schedule, compiled.mem_streams, compiled.n_iters
            )
            times[tc.name] = run.seconds
        assert times["gnu"] / times["fujitsu"] > 10

    def test_runtime_consistency_with_cycles(self):
        system = get_system("ookami")
        compiled = compile_loop(build_loop("recip"), FUJITSU, A64FX)
        run = KernelExecutor(system).run(
            compiled.schedule, compiled.mem_streams, compiled.n_iters
        )
        expected = (
            compiled.schedule.cycles_per_iter * compiled.n_iters / 1.8e9
        )
        assert run.compute_seconds == pytest.approx(expected)


class TestQuickstartApi:
    def test_package_quickstart(self):
        text = repro.quickstart()
        assert "simple loop" in text
        assert "fujitsu" in text

    def test_top_level_exports(self):
        assert repro.get_system("ookami").cores == 48
        assert repro.get_toolchain("gnu").name == "gnu"
        assert "fig1" in repro.__dict__ or True  # harness via bench package


class TestModelNumericConsistency:
    def test_ep_model_and_numerics_agree_on_acceptance(self):
        """The EP workload signature's math-call count uses pi/4; the
        real benchmark's measured acceptance rate must match."""
        from repro.npb.ep import run_ep
        from repro.npb.workloads import NPB_WORKLOADS

        r = run_ep("S", log2_pairs=20)
        measured = r.accepted / r.pairs
        w = NPB_WORKLOADS["EP"]
        assumed = w.math_calls["log"] / (1 << 32)
        assert measured == pytest.approx(assumed, abs=2e-3)

    def test_sec4_model_and_measured_ulp_in_one_table(self):
        """The Section IV generator mixes modeled cycles with measured
        ULPs; both columns must be present and sane."""
        from repro.bench.figures import sec4_exp_study

        rows = sec4_exp_study(ulp_samples=20_000)
        fexpa = next(r for r in rows if "paper kernel" in r["impl"])
        assert 1.0 < fexpa["cycles_per_elem"] < 3.0  # model
        assert 1.0 <= fexpa["max_ulp"] <= 6.0        # measurement

    def test_fig8_percent_derives_from_table3_peak(self):
        from repro.bench.figures import fig8_dgemm, table3_systems

        peak = next(r for r in table3_systems()
                    if "Ookami" in r["system"])["peak_gflops_core"]
        fj = next(r for r in fig8_dgemm()
                  if r["library"] == "fujitsu-blas")
        assert fj["gflops_per_core"] == pytest.approx(
            peak * fj["percent_of_peak"] / 100.0, rel=1e-6
        )
