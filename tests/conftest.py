"""Shared fixtures: opt-in strict model validation.

Running the suite with ``REPRO_VALIDATE=1`` installs the strict
validation hooks (see ``repro.validate.hooks``) for the whole session:
every compiled loop is IR-verified, every simulated schedule and kernel
run replays the machine invariants, and every cleanly-exited profiling
scope reconciles its counter identities — the first breach raises
``ValidationError`` inside the offending test.
"""

import pytest


@pytest.fixture(scope="session", autouse=True)
def _strict_validation():
    from repro.validate.hooks import strict_from_env, uninstall_strict_hooks

    installed = strict_from_env()
    yield
    if installed:
        uninstall_strict_hooks()
