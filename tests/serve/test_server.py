"""Tests for the prediction server, its frontends and the worker pool."""

import io
import json

import pytest

from repro.compilers.cache import configure_compile_cache
from repro.engine.cache import configure
from repro.serve import (
    PredictionServer,
    ServeClient,
    TcpFrontend,
    reset_session_stats,
    serve_stdio,
    session_stats,
)


@pytest.fixture(autouse=True)
def fresh_state():
    configure()
    configure_compile_cache()
    reset_session_stats()
    yield
    configure()
    configure_compile_cache()
    reset_session_stats()


def _predict(**overrides):
    doc = {"kernel": "simple", "toolchain": "fujitsu"}
    doc.update(overrides)
    return doc


class TestInProcess:
    def test_engine_response_shape(self):
        with PredictionServer() as server:
            resp = server.request(_predict(id=1, window=24))
        assert resp["format"] == "repro.serve/1"
        assert resp["ok"] is True
        assert resp["id"] == 1
        result = resp["result"]
        assert result["loop"] == "simple"
        assert result["window"] == 24
        assert result["tier"] == "engine"
        for field in ("model_cycles_per_element", "cycles_per_iter",
                      "cycles_per_element", "ipc", "bound"):
            assert field in result
        assert resp["provenance"]["cache"] == "miss"
        assert resp["provenance"]["deduped"] is False
        assert resp["provenance"]["batched_with"] >= 1

    def test_ecm_response_carries_system_and_threads(self):
        with PredictionServer() as server:
            resp = server.request(_predict(tier="ecm", threads=4))
        assert resp["ok"] is True
        assert resp["result"]["threads"] == 4
        assert "Ookami" in resp["result"]["system"]

    def test_replay_is_a_cache_hit(self):
        with PredictionServer() as server:
            first = server.request(_predict(id=1, window=8))
            second = server.request(_predict(id=2, window=8))
        assert first["provenance"]["cache"] == "miss"
        assert second["provenance"]["cache"] == "hit"
        assert first["result"] == second["result"]

    def test_bad_request_answers_without_killing_the_batch(self):
        with PredictionServer() as server:
            bad = server.request({"id": 9, "kernel": "no-such-kernel"})
            good = server.request(_predict(id=10))
        assert bad["ok"] is False
        assert "no-such-kernel" in bad["error"]
        assert bad["id"] == 9
        assert good["ok"] is True

    def test_malformed_line_answers_error(self):
        with PredictionServer() as server:
            resp = server.request("this is not json")
        assert resp["ok"] is False
        assert "invalid JSON" in resp["error"]

    def test_control_ops(self):
        with PredictionServer() as server:
            assert server.request({"op": "ping"})["op"] == "ping"
            stats = server.request({"op": "stats"})
            assert stats["ok"] is True
            assert "requests" in stats["stats"]

    def test_session_stats_accumulate(self):
        with PredictionServer() as server:
            server.request(_predict(id=1))
            server.request(_predict(id=2))
            server.request({"kernel": "bogus"})
        stats = session_stats()
        assert stats["requests"] == 2      # protocol errors never admit
        assert stats["ok"] == 2
        assert stats["errors"] == 1
        assert stats["batches"] >= 1
        assert stats["cache_hits"] == 1    # the replay
        assert stats["cache_misses"] == 1


class TestWorkerPool:
    def test_pool_probe_records_mode(self):
        server = PredictionServer(workers=2)
        with server:
            resp = server.request(_predict())
        assert resp["ok"] is True
        stats = session_stats()
        assert stats["workers"] == 2
        assert stats["pool_mode"] in ("process", "thread")

    def test_downgrade_warns_and_serves_on_threads(self, monkeypatch):
        import repro.engine.sweep as sweep
        from repro.engine.sweep import (
            PoolDowngradeWarning,
            last_effective_mode,
        )

        def broken_pool(*args, **kwargs):
            raise PermissionError("no fork in this sandbox")

        monkeypatch.setattr(sweep, "ProcessPoolExecutor", broken_pool)
        server = PredictionServer(workers=2)
        with pytest.warns(PoolDowngradeWarning):
            server.start()
        try:
            assert last_effective_mode() == "thread"
            assert session_stats()["pool_mode"] == "thread"
            resp = server.request(_predict(id=1, window=24))
            assert resp["ok"] is True
        finally:
            server.stop()
        # served answer matches the scalar path despite the downgrade
        with PredictionServer() as serial:
            ref = serial.request(_predict(id=1, window=24))
        assert resp["result"] == ref["result"]


class TestStdioFrontend:
    def test_lines_in_lines_out_in_order(self):
        lines = [
            json.dumps(_predict(id=0, window=8)),
            json.dumps({"op": "stats"}),
            json.dumps(_predict(id=1, window=8)),
            "",
            json.dumps({"op": "shutdown"}),
            json.dumps(_predict(id=99)),  # after shutdown: never admitted
        ]
        out = io.StringIO()
        with PredictionServer() as server:
            code = serve_stdio(server, iter(line + "\n" for line in lines),
                               out)
        assert code == 0
        docs = [json.loads(line) for line in
                out.getvalue().strip().splitlines()]
        assert len(docs) == 4  # blank skipped, post-shutdown unread
        assert docs[0]["id"] == 0
        assert docs[1]["op"] == "stats"
        assert docs[2]["id"] == 1
        assert docs[3]["op"] == "shutdown"
        assert docs[0]["result"] == docs[2]["result"]


class TestTcpFrontend:
    def test_round_trip_and_shutdown(self):
        with PredictionServer() as server:
            frontend = TcpFrontend(server)
            with frontend:
                with ServeClient(frontend.address) as client:
                    assert client.ping()["ok"] is True
                    resp = client.request(_predict(id=5, window=24))
                    assert resp["ok"] is True
                    assert client.stats()["requests"] == 1
                    assert client.shutdown()["op"] == "shutdown"
                assert frontend.wait(timeout=5)

    def test_concurrent_connections_share_caches(self):
        with PredictionServer() as server:
            with TcpFrontend(server) as frontend:
                with ServeClient(frontend.address) as a, \
                        ServeClient(frontend.address) as b:
                    ra = a.request(_predict(id=1, window=8))
                    rb = b.request(_predict(id=2, window=8))
        assert ra["result"] == rb["result"]
        assert rb["provenance"]["cache"] == "hit"
