"""Tests for the repro.serve/1 line protocol."""

import json

import pytest

from repro.serve.protocol import (
    PROTOCOL_FORMAT,
    PredictRequest,
    ProtocolError,
    error_response,
    parse_request,
    predict_response,
)


def _line(**doc):
    return json.dumps(doc)


class TestParse:
    def test_minimal_predict_defaults(self):
        req = parse_request(_line(kernel="simple"))
        assert isinstance(req, PredictRequest)
        assert req.toolchain == "fujitsu"
        assert req.tier == "engine"
        assert req.window is None
        assert req.system is None
        assert req.threads == 1
        assert req.id is None

    def test_full_predict(self):
        req = parse_request(_line(
            op="predict", id=7, kernel="spmv_crs", toolchain="GNU",
            tier="ecm", window=24, system="Ookami", threads=4,
        ))
        assert req.id == 7
        assert req.toolchain == "gnu"
        assert req.system == "ookami"
        assert req.threads == 4

    @pytest.mark.parametrize("op", ["stats", "ping", "shutdown"])
    def test_control_ops_return_name(self, op):
        assert parse_request(_line(op=op)) == op

    def test_every_catalog_kernel_and_toolchain_parses(self):
        from repro.compilers.toolchains import TOOLCHAINS
        from repro.kernels.catalog import ALL_KERNEL_NAMES

        for kernel in ALL_KERNEL_NAMES:
            for tc in TOOLCHAINS:
                req = parse_request(_line(kernel=kernel, toolchain=tc))
                assert req.kernel == kernel

    @pytest.mark.parametrize("line", [
        "not json",
        "[1, 2]",
        _line(op="nope"),
        _line(),                                     # kernel missing
        _line(kernel="no-such-kernel"),
        _line(kernel="simple", toolchain="no-such-tc"),
        _line(kernel="simple", tier="quantum"),
        _line(kernel="simple", window=0),
        _line(kernel="simple", window=True),
        _line(kernel="simple", window="24"),
        _line(kernel="simple", threads=0),
        _line(kernel="simple", threads=4),           # engine: 1 core only
        _line(kernel="simple", system="ookami"),     # system is ecm-only
        _line(kernel="simple", tier="ecm", system="no-such-system"),
        _line(kernel="simple", frobnicate=1),        # unknown key
    ])
    def test_rejects(self, line):
        with pytest.raises(ProtocolError):
            parse_request(line)

    def test_ecm_accepts_system_and_threads(self):
        req = parse_request(_line(kernel="simple", tier="ecm",
                                  system="skylake", threads=12))
        assert (req.system, req.threads) == ("skylake", 12)


class TestFingerprint:
    def test_key_excludes_id(self):
        a = parse_request(_line(id=1, kernel="simple", window=8))
        b = parse_request(_line(id=2, kernel="simple", window=8))
        assert a.key == b.key
        assert a.id != b.id

    def test_key_separates_content(self):
        base = _line(kernel="simple", window=8)
        others = [
            _line(kernel="gather", window=8),
            _line(kernel="simple", window=9),
            _line(kernel="simple"),
            _line(kernel="simple", window=8, toolchain="gnu"),
            _line(kernel="simple", tier="ecm", window=8),
        ]
        key = parse_request(base).key
        for line in others:
            assert parse_request(line).key != key


class TestResponses:
    def test_predict_response_shape(self):
        req = parse_request(_line(id=3, kernel="simple"))
        doc = predict_response(req, {"x": 1.0}, {"cache": "miss"})
        assert doc["format"] == PROTOCOL_FORMAT
        assert doc["id"] == 3
        assert doc["ok"] is True
        assert doc["result"] == {"x": 1.0}
        assert doc["provenance"] == {"cache": "miss"}

    def test_error_response_shape(self):
        doc = error_response("boom", request_id=9)
        assert doc == {"format": PROTOCOL_FORMAT, "id": 9,
                       "ok": False, "error": "boom"}
