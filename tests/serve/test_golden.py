"""Served responses are bit-identical to the direct prediction APIs.

Every kernel x toolchain x tier in the catalog goes through the server
once cold and once as a cache-hit replay; both responses must equal
what :func:`repro.engine.scheduler.schedule_on` /
:func:`repro.ecm.model.predict_compiled` return when called directly.
"""

import json

import pytest

from repro.compilers.cache import configure_compile_cache
from repro.compilers.codegen import compile_loop
from repro.compilers.toolchains import TOOLCHAINS, get_toolchain
from repro.engine.cache import configure
from repro.engine.scheduler import schedule_on
from repro.kernels.catalog import ALL_KERNEL_NAMES, build_kernel
from repro.machine.microarch import A64FX, SKYLAKE_6140
from repro.machine.systems import get_system
from repro.perf.profile import default_system_for
from repro.serve import PredictionServer, reset_session_stats


@pytest.fixture(autouse=True)
def fresh_state():
    configure()
    configure_compile_cache()
    reset_session_stats()
    yield
    configure()
    configure_compile_cache()
    reset_session_stats()


def _catalog_requests():
    reqs = []
    for kernel in ALL_KERNEL_NAMES:
        for tc in TOOLCHAINS:
            for tier in ("engine", "ecm"):
                reqs.append({"id": len(reqs), "kernel": kernel,
                             "toolchain": tc, "tier": tier})
    return reqs


def _direct_row(req):
    """What the scalar prediction APIs say, field for field."""
    tc = get_toolchain(req["toolchain"])
    march = SKYLAKE_6140 if tc.target == "x86" else A64FX
    compiled = compile_loop(build_kernel(req["kernel"]), tc, march)
    row = {
        "loop": req["kernel"],
        "toolchain": tc.name,
        "march": march.name,
        "window": march.window,
        "tier": req["tier"],
        "model_cycles_per_element": compiled.cycles_per_element,
    }
    if req["tier"] == "ecm":
        from repro.ecm.model import predict_compiled

        system = get_system(default_system_for(req["toolchain"]))
        pred = predict_compiled(compiled, system)
        row.update({
            "system": system.name,
            "threads": 1,
            "cycles_per_iter": pred.cycles_per_iter,
            "cycles_per_element": pred.cycles_per_element,
            "ipc": pred.incore.n_instrs / pred.cycles_per_iter,
            "bound": pred.bound,
        })
        return row
    sched = schedule_on(march, compiled.stream)
    row.update({
        "cycles_per_iter": sched.cycles_per_iter,
        "cycles_per_element": sched.cycles_per_element,
        "ipc": sched.ipc,
        "bound": sched.bound,
    })
    return row


class TestGolden:
    def test_catalog_served_equals_direct_including_replays(self):
        reqs = _catalog_requests()
        with PredictionServer(batch_window=0.02) as server:
            cold = [f.result(timeout=120) for f in
                    [server.submit_line(json.dumps(r))[0] for r in reqs]]
            warm = [f.result(timeout=120) for f in
                    [server.submit_line(json.dumps(r))[0] for r in reqs]]

        for req, cold_resp, warm_resp in zip(reqs, cold, warm):
            label = f"{req['kernel']}/{req['toolchain']}/{req['tier']}"
            assert cold_resp["ok"], f"{label}: {cold_resp.get('error')}"
            direct = _direct_row(req)
            assert cold_resp["result"] == direct, label
            # the cache-hit replay is bit-identical too
            assert warm_resp["result"] == direct, label
            assert warm_resp["provenance"]["cache"] == "hit", label

    def test_windowed_engine_point_matches_direct(self):
        with PredictionServer() as server:
            resp = server.request({"kernel": "scatter",
                                   "toolchain": "cray", "window": 16})
        tc = get_toolchain("cray")
        march = SKYLAKE_6140 if tc.target == "x86" else A64FX
        compiled = compile_loop(build_kernel("scatter"), tc, march)
        sched = schedule_on(march, compiled.stream, 16)
        assert resp["result"]["cycles_per_element"] == \
            sched.cycles_per_element
        assert resp["result"]["ipc"] == sched.ipc
        assert resp["result"]["bound"] == sched.bound

    def test_ecm_threads_match_direct(self):
        from repro.ecm.model import predict_compiled

        with PredictionServer() as server:
            resp = server.request({"kernel": "stencil3d",
                                   "toolchain": "fujitsu", "tier": "ecm",
                                   "threads": 12})
        tc = get_toolchain("fujitsu")
        compiled = compile_loop(build_kernel("stencil3d"), tc, A64FX)
        pred = predict_compiled(compiled, get_system("ookami"),
                                active_cores_per_domain=12)
        assert resp["result"]["cycles_per_iter"] == pred.cycles_per_iter
        assert resp["result"]["cycles_per_element"] == \
            pred.cycles_per_element
        assert resp["result"]["bound"] == pred.bound
