"""Cross-request dedup satellite: identical in-flight requests coalesce.

Two concurrent identical requests must produce bit-identical payloads
from exactly one scheduler execution — asserted through the content
-addressed cache statistics (one compile miss, one set of schedule
-cache misses, zero extra executions) and the serve-session counters.
"""

import json

import pytest

from repro.compilers.cache import configure_compile_cache, get_compile_cache
from repro.engine.cache import configure, get_cache
from repro.serve import PredictionServer, reset_session_stats, session_stats


@pytest.fixture(autouse=True)
def fresh_state():
    configure()
    configure_compile_cache()
    reset_session_stats()
    yield
    configure()
    configure_compile_cache()
    reset_session_stats()


def _submit_pair(server, doc_a, doc_b):
    fa, _ = server.submit_line(json.dumps(doc_a))
    fb, _ = server.submit_line(json.dumps(doc_b))
    return fa.result(timeout=30), fb.result(timeout=30)


class TestCrossRequestDedup:
    def test_identical_requests_one_execution(self):
        # a wide batching window guarantees both land in one micro-batch
        server = PredictionServer(batch_window=0.25)
        with server:
            ra, rb = _submit_pair(
                server,
                {"id": "a", "kernel": "gather", "toolchain": "arm",
                 "window": 24},
                {"id": "b", "kernel": "gather", "toolchain": "arm",
                 "window": 24},
            )

        # bit-identical payloads (ids and dedup provenance aside)
        assert ra["ok"] and rb["ok"]
        assert json.dumps(ra["result"], sort_keys=True) == \
            json.dumps(rb["result"], sort_keys=True)
        assert ra["provenance"]["batched_with"] == 2
        assert rb["provenance"]["batched_with"] == 2
        assert [ra["provenance"]["deduped"],
                rb["provenance"]["deduped"]].count(True) == 1

        # exactly one execution: one compilation, one pass over the two
        # unique schedule lanes (default window + the requested window),
        # nothing recomputed for the duplicate
        cstats = get_compile_cache().stats()
        assert cstats["misses"] == 1
        assert cstats["hits"] == 0
        sstats = get_cache().stats()
        assert sstats["misses"] == 2
        assert sstats["hits"] == 0
        assert sstats["entries"] == 2

        serve = session_stats()
        assert serve["requests"] == 2
        assert serve["ok"] == 2
        assert serve["batches"] == 1
        assert serve["deduped"] == 1

    def test_distinct_requests_do_not_coalesce(self):
        server = PredictionServer(batch_window=0.25)
        with server:
            ra, rb = _submit_pair(
                server,
                {"id": "a", "kernel": "gather", "toolchain": "arm",
                 "window": 24},
                {"id": "b", "kernel": "gather", "toolchain": "arm",
                 "window": 25},
            )
        assert ra["ok"] and rb["ok"]
        assert ra["result"] != rb["result"]
        assert session_stats()["deduped"] == 0
        # shared combo still compiles once; the windows are distinct lanes
        assert get_compile_cache().stats()["misses"] == 1
        assert get_cache().stats()["entries"] == 3

    def test_ecm_duplicates_share_one_compile(self):
        server = PredictionServer(batch_window=0.25)
        with server:
            ra, rb = _submit_pair(
                server,
                {"id": 1, "kernel": "spmv_crs", "toolchain": "fujitsu",
                 "tier": "ecm", "threads": 4},
                {"id": 2, "kernel": "spmv_crs", "toolchain": "fujitsu",
                 "tier": "ecm", "threads": 4},
            )
        assert ra["result"] == rb["result"]
        assert get_compile_cache().stats()["misses"] == 1
        assert session_stats()["deduped"] == 1

    def test_duplicate_across_batches_is_a_hit_not_a_dedup(self):
        with PredictionServer() as server:
            first = server.request({"id": 1, "kernel": "gather",
                                    "toolchain": "arm", "window": 24})
            second = server.request({"id": 2, "kernel": "gather",
                                     "toolchain": "arm", "window": 24})
        assert first["result"] == second["result"]
        assert second["provenance"]["deduped"] is False
        assert second["provenance"]["cache"] == "hit"
        # the replayed batch answers from the caches: no new entries
        sstats = get_cache().stats()
        assert sstats["entries"] == 2
        assert sstats["hits"] > 0
