"""Tests for the micro-batching admission queue."""

import time

import pytest

from repro.serve.queue import MicroBatcher


def _echo(items):
    return [("seen", item) for item in items]


class TestMicroBatcher:
    def test_single_item_round_trip(self):
        with MicroBatcher(_echo, batch_window=0.0) as mb:
            assert mb.submit("a").result(timeout=5) == ("seen", "a")

    def test_pending_items_share_a_batch(self):
        batches = []

        def execute(items):
            batches.append(list(items))
            return items

        # submissions land microseconds apart, far inside the window:
        # the drain thread must coalesce them into one batch
        with MicroBatcher(execute, batch_window=0.2) as mb:
            futs = [mb.submit(i) for i in range(4)]
            assert [f.result(timeout=5) for f in futs] == [0, 1, 2, 3]
        assert batches == [[0, 1, 2, 3]]

    def test_max_batch_splits(self):
        sizes = []

        def execute(items):
            sizes.append(len(items))
            return items

        with MicroBatcher(execute, batch_window=0.05, max_batch=2) as mb:
            futs = [mb.submit(i) for i in range(5)]
            assert [f.result(timeout=5) for f in futs] == list(range(5))
        assert all(size <= 2 for size in sizes)
        assert sum(sizes) == 5

    def test_executor_exception_fails_batch_not_queue(self):
        calls = []

        def execute(items):
            calls.append(items)
            if len(calls) == 1:
                raise RuntimeError("bad batch")
            return items

        with MicroBatcher(execute, batch_window=0.0) as mb:
            with pytest.raises(RuntimeError, match="bad batch"):
                mb.submit("poison").result(timeout=5)
            # the drain thread survives and serves the next batch
            assert mb.submit("fine").result(timeout=5) == "fine"

    def test_result_count_mismatch_is_an_error(self):
        with MicroBatcher(lambda items: [], batch_window=0.0) as mb:
            with pytest.raises(RuntimeError, match="0 results"):
                mb.submit("x").result(timeout=5)

    def test_stop_drains_pending(self):
        done = []

        def execute(items):
            time.sleep(0.01)
            done.extend(items)
            return items

        mb = MicroBatcher(execute, batch_window=0.5, max_batch=1)
        mb.start()
        futs = [mb.submit(i) for i in range(3)]
        mb.stop()
        assert [f.result(timeout=1) for f in futs] == [0, 1, 2]
        assert done == [0, 1, 2]

    def test_submit_after_stop_raises(self):
        mb = MicroBatcher(_echo)
        mb.start()
        mb.stop()
        with pytest.raises(RuntimeError):
            mb.submit("late")

    def test_start_is_idempotent(self):
        with MicroBatcher(_echo, batch_window=0.0) as mb:
            mb.start()
            assert mb.submit("a").result(timeout=5) == ("seen", "a")

    @pytest.mark.parametrize("kwargs", [
        {"batch_window": -0.1}, {"max_batch": 0},
    ])
    def test_rejects_bad_configuration(self, kwargs):
        with pytest.raises(ValueError):
            MicroBatcher(_echo, **kwargs)
