"""Tests for the serve load generator and throughput benchmark."""

import pytest

from repro.serve.bench import (
    BENCH_FORMAT,
    SERVE_SPEEDUP_FLOOR,
    SERVE_SPEEDUP_FLOOR_QUICK,
    main,
    render,
    run_bench,
)
from repro.serve.client import LoadResult, request_mix


class TestRequestMix:
    def test_deterministic(self):
        assert request_mix(quick=True) == request_mix(quick=True)
        assert request_mix() == request_mix()

    def test_contains_duplicates_and_both_tiers(self):
        mix = request_mix(quick=True)
        keyed = [tuple(sorted((k, v) for k, v in r.items() if k != "id"))
                 for r in mix]
        assert len(set(keyed)) < len(keyed)  # duplicates present
        assert {r["tier"] for r in mix} == {"engine", "ecm"}
        assert all(r["id"] == i for i, r in enumerate(mix))

    def test_full_mix_covers_catalog(self):
        from repro.compilers.toolchains import TOOLCHAINS
        from repro.kernels.catalog import ALL_KERNEL_NAMES

        mix = request_mix()
        assert {r["kernel"] for r in mix} == set(ALL_KERNEL_NAMES)
        assert {r["toolchain"] for r in mix} == set(TOOLCHAINS)

    def test_seed_changes_mix(self):
        assert request_mix(quick=True, seed=1) != \
            request_mix(quick=True, seed=2)


class TestLoadResult:
    def test_percentiles_and_rps(self):
        r = LoadResult(wall_s=2.0,
                       latencies_s=[i / 1000 for i in range(1, 101)])
        assert r.requests_per_s == 50.0
        assert r.percentile_ms(0.5) == pytest.approx(51.0)
        assert r.percentile_ms(0.99) == pytest.approx(99.0)
        assert r.percentile_ms(1.0) == pytest.approx(100.0)

    def test_empty(self):
        r = LoadResult(wall_s=0.0)
        assert r.requests_per_s == 0.0
        assert r.percentile_ms(0.5) == 0.0


class TestRunBench:
    def test_quick_payload_shape_and_equivalence(self):
        doc = run_bench(quick=True)
        assert doc["format"] == BENCH_FORMAT
        assert doc["quick"] is True
        assert doc["requests"] > doc["unique_requests"]
        assert len(doc["levels"]) >= 3
        assert {lvl["concurrency"] for lvl in doc["levels"]} >= {1}
        for lvl in [doc["naive"], *doc["levels"]]:
            for field in ("rps", "p50_ms", "p99_ms", "avg_batch",
                          "deduped", "errors"):
                assert field in lvl
        # correctness gates are deterministic (speed floors are not,
        # on a loaded CI box, so only the full bench enforces timing)
        acc = doc["acceptance"]
        assert acc["equivalence_pass"], f"{doc['mismatches']} mismatches"
        assert acc["errors_pass"]
        assert acc["speedup_floor"] == SERVE_SPEEDUP_FLOOR_QUICK
        assert doc["speedup_vs_naive"] > 0
        assert SERVE_SPEEDUP_FLOOR > SERVE_SPEEDUP_FLOOR_QUICK
        text = render(doc)
        assert "speedup vs naive" in text
        assert "response equivalence" in text

    def test_main_writes_payload(self, tmp_path, capsys):
        out = tmp_path / "BENCH_serve.json"
        code = main(["--quick", "--out", str(out)])
        captured = capsys.readouterr().out
        assert out.exists()
        assert "wrote" in captured
        assert code in (0, 1)  # floor result is timing-dependent

    def test_main_rejects_unknown_args(self, capsys):
        assert main(["--frobnicate"]) == 1
        assert "usage" in capsys.readouterr().out
