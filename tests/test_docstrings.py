"""Docstring-coverage gate for the public API of ``src/repro``.

Every module, every public class and every public function/method (names
not starting with ``_``) must carry a docstring.  This is a custom
AST-based checker — no third-party lint dependency — wired into the CI
docs job; the failure message lists each undocumented definition as
``path:line name``.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _has_docstring(node: ast.AST) -> bool:
    return ast.get_docstring(node) is not None


def _decorated_with(node: ast.AST, suffix: str) -> bool:
    """True when any decorator attribute path ends in *suffix* (setter)."""
    for dec in getattr(node, "decorator_list", ()):
        if isinstance(dec, ast.Attribute) and dec.attr == suffix:
            return True
    return False


def iter_undocumented(path: Path):
    """Yield ``(lineno, qualname)`` for public defs without docstrings."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    if not _has_docstring(tree):
        yield 1, "<module>"

    def walk(node: ast.AST, prefix: str):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                if not _is_public(child.name):
                    continue  # members of private classes are private too
                if not _has_docstring(child):
                    yield child.lineno, f"{prefix}{child.name}"
                yield from walk(child, f"{prefix}{child.name}.")
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # property setters share the getter's docstring
                if (_is_public(child.name) and not _has_docstring(child)
                        and not _decorated_with(child, "setter")):
                    yield child.lineno, f"{prefix}{child.name}"

    yield from walk(tree, "")


def test_public_api_is_documented():
    missing = []
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC.parent.parent)
        for lineno, name in iter_undocumented(path):
            missing.append(f"{rel}:{lineno} {name}")
    assert not missing, (
        "public definitions without docstrings:\n  " + "\n  ".join(missing)
    )
