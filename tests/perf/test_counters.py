"""Unit tests of the counter core: CounterSet, scopes, emission."""

import pytest

from repro.perf.counters import (
    CounterSet,
    ProfileScope,
    active_scopes,
    emit,
    emit_unique,
    is_profiling,
)


class TestCounterSet:
    def test_inc_accumulates(self):
        cs = CounterSet()
        cs.inc("a.b", 2.0)
        cs.inc("a.b", 3.0)
        assert cs["a.b"] == 5.0

    def test_put_overwrites(self):
        cs = CounterSet()
        cs.put("ratio", 0.5)
        cs.put("ratio", 0.25)
        assert cs["ratio"] == 0.25

    def test_mapping_interface(self):
        cs = CounterSet("lbl")
        cs.inc("z", 1.0)
        cs.inc("a", 1.0)
        assert list(cs) == ["a", "z"]          # sorted iteration
        assert len(cs) == 2
        assert "a" in cs
        assert cs.get("missing", 7.0) == 7.0

    def test_group_and_total(self):
        cs = CounterSet()
        cs.inc("pipe.busy.fla", 10.0)
        cs.inc("pipe.busy.flb", 5.0)
        cs.inc("pipe.other", 99.0)
        assert cs.group("pipe.busy") == {"fla": 10.0, "flb": 5.0}
        assert cs.total("pipe.busy") == 15.0

    def test_merge(self):
        a, b = CounterSet(), CounterSet()
        a.inc("x", 1.0)
        b.inc("x", 2.0)
        b.inc("y", 3.0)
        a.merge(b)
        assert a.as_dict() == {"x": 3.0, "y": 3.0}

    def test_as_dict_sorted(self):
        cs = CounterSet()
        cs.inc("b")
        cs.inc("a")
        assert list(cs.as_dict()) == ["a", "b"]


class TestScopes:
    def test_no_scope_emit_is_noop(self):
        assert not is_profiling()
        emit("dropped", 1.0)  # must not raise

    def test_scope_collects(self):
        with ProfileScope("t") as cs:
            assert is_profiling()
            emit("k", 2.0)
            emit("k", 1.0)
        assert not is_profiling()
        assert cs["k"] == 3.0

    def test_nested_scopes_both_receive(self):
        with ProfileScope("outer") as outer:
            emit("a", 1.0)
            with ProfileScope("inner") as inner:
                emit("a", 1.0)
        assert outer["a"] == 2.0
        assert inner["a"] == 1.0

    def test_emit_unique_overwrites_in_all_scopes(self):
        with ProfileScope() as outer, ProfileScope() as inner:
            emit_unique("r", 0.5)
            emit_unique("r", 0.75)
        assert outer["r"] == 0.75
        assert inner["r"] == 0.75

    def test_scope_exit_is_exception_safe(self):
        with pytest.raises(RuntimeError):
            with ProfileScope():
                raise RuntimeError("boom")
        assert not is_profiling()
        assert active_scopes() == ()


class TestRendering:
    def test_render_counters_groups(self):
        from repro.perf.report import render_counters

        cs = CounterSet()
        cs.inc("pipeline.instructions", 100)
        cs.inc("memory.levels.L1.hits", 3)
        text = render_counters(cs)
        assert "[pipeline]" in text and "[memory]" in text
        assert "100" in text

    def test_render_empty(self):
        from repro.perf.report import render_counters

        assert render_counters(CounterSet()) == "(no counters)"

    def test_json_document_shape(self):
        from repro.perf.report import (
            PROFILE_SCHEMA,
            profile_to_json,
            profile_to_json_str,
        )

        cs = CounterSet()
        cs.inc("x", 1.0)
        doc = profile_to_json(
            kernel="k", toolchain="t", system="s",
            counters=cs, derived={"seconds": 1.0},
        )
        assert doc["schema"] == PROFILE_SCHEMA
        assert doc["counters"] == {"x": 1.0}
        text = profile_to_json_str(doc)
        assert '"schema"' in text
