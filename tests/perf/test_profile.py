"""End-to-end tests of profile_kernel and the `repro profile` CLI.

The headline acceptance criterion lives here: profiling the gather loop
and the FEXPA exp kernel must emit JSON whose cycle and byte counters
reconcile (within 1%) with the analytic KernelRun seconds.
"""

import json

import pytest

from repro.__main__ import main
from repro.perf.profile import default_system_for, profile_kernel
from repro.perf.report import PROFILE_SCHEMA, profile_to_json_str


class TestProfileKernel:
    @pytest.mark.parametrize("kernel", ["gather", "exp"])
    def test_acceptance_reconciliation_within_1pct(self, kernel):
        prof = profile_kernel(kernel, "fujitsu")
        doc = prof.to_json()
        derived = doc["derived"]
        rec = derived["reconciliation"]
        assert rec["compute_seconds_from_cycles"] == pytest.approx(
            derived["compute_seconds"], rel=0.01
        )
        assert rec["memory_seconds_from_bytes"] == pytest.approx(
            derived["memory_seconds"], rel=0.01, abs=1e-15
        )
        assert rec["seconds_from_counters"] == pytest.approx(
            derived["seconds"], rel=0.01
        )

    @pytest.mark.parametrize("kernel", ["gather", "exp"])
    def test_acceptance_reconciliation_dram_resident(self, kernel):
        """Same reconciliation with the working set pushed out to HBM."""
        prof = profile_kernel(kernel, "fujitsu", n=2_000_000)
        derived = prof.to_json()["derived"]
        rec = derived["reconciliation"]
        assert rec["seconds_from_counters"] == pytest.approx(
            derived["seconds"], rel=0.01
        )

    def test_json_document_is_stable_schema(self):
        doc = profile_kernel("gather").to_json()
        assert doc["schema"] == PROFILE_SCHEMA
        assert set(doc) >= {"schema", "kernel", "toolchain", "system",
                            "counters", "derived"}
        # serializes deterministically
        text = profile_to_json_str(doc)
        assert json.loads(text) == json.loads(profile_to_json_str(doc))

    def test_exp_kernel_uses_fexpa(self):
        prof = profile_kernel("exp", "fujitsu")
        assert prof.counters["pipeline.instr_mix.fexpa"] > 0

    def test_gather_is_ls_pipe_bound(self):
        prof = profile_kernel("gather", "fujitsu")
        busy = prof.counters.group("pipeline.pipe_busy")
        assert max(busy, key=busy.get) in ("ls1", "ls2")

    def test_scalar_toolchain_profile(self):
        """GNU refuses to vectorize exp: scalar profile, quality factor."""
        prof = profile_kernel("exp", "gnu")
        assert prof.quality_factor != 1.0 or prof.schedule.elements_per_iter == 1
        assert prof.cycles_per_element > profile_kernel(
            "exp", "fujitsu"
        ).cycles_per_element

    def test_default_system_resolution(self):
        assert default_system_for("fujitsu") == "ookami"
        assert default_system_for("intel") == "skylake"
        prof = profile_kernel("simple", "intel")
        assert prof.system == "skylake"

    def test_render_mentions_key_sections(self):
        text = profile_kernel("gather").render()
        assert "ECM-style decomposition" in text
        assert "issue slots" in text
        assert "[pipeline]" in text

    def test_counters_scoped_not_leaked(self):
        from repro.perf.counters import is_profiling

        profile_kernel("simple")
        assert not is_profiling()


class TestProfileCLI:
    def test_cli_text(self, capsys):
        assert main(["profile", "gather"]) == 0
        out = capsys.readouterr().out
        assert "ECM-style decomposition" in out

    def test_cli_json(self, capsys):
        assert main(["profile", "exp", "fujitsu", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == PROFILE_SCHEMA
        assert doc["kernel"] == "exp"

    def test_cli_n_override(self, capsys):
        assert main(["profile", "gather", "--n", "200000", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["derived"]["bound"] == "memory"

    def test_cli_bad_kernel(self, capsys):
        assert main(["profile", "nope"]) == 1
        assert "profile failed" in capsys.readouterr().out

    def test_cli_usage(self, capsys):
        assert main(["profile"]) == 1
        assert "usage" in capsys.readouterr().out
