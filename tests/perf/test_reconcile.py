"""Counter totals must reconcile with the analytic outputs they shadow.

These are the tests the ISSUE's acceptance criteria name: the counter
subsystem is only trustworthy if its totals agree with the analytic
model it instruments — slot accounting with the scheduler, byte
accounting with the stream footprints, and the exact cache simulator
with its own trace-driven counters.
"""

import pytest

from repro.compilers.codegen import compile_loop
from repro.compilers.toolchains import get_toolchain
from repro.engine.executor import KernelExecutor
from repro.engine.openmp import OpenMPModel, RuntimeTraits, WorkDecomposition
from repro.engine.scheduler import PipelineScheduler
from repro.kernels.loops import build_loop
from repro.machine.memory import CacheSim, MemoryStream
from repro.machine.numa import PagePlacement
from repro.machine.systems import OOKAMI, get_system
from repro.machine.trace import gather_trace, measure_trace
from repro.perf.counters import ProfileScope


def _schedule_under_counters(loop_name: str, toolchain: str = "fujitsu"):
    compiled = compile_loop(
        build_loop(loop_name), get_toolchain(toolchain), OOKAMI.cpu
    )
    with ProfileScope() as counters:
        sched = PipelineScheduler(OOKAMI.cpu).steady_state(compiled.stream)
    return compiled, sched, counters


class TestSchedulerSlotAccounting:
    @pytest.mark.parametrize("loop_name", ["simple", "gather", "exp", "sqrt"])
    def test_slot_identity_exact(self, loop_name):
        """issue_width x makespan == slots used + slots stalled, exactly."""
        _, _, c = _schedule_under_counters(loop_name)
        assert (
            c["pipeline.issue_slots.total"]
            == c["pipeline.issue_slots.used"] + c["pipeline.issue_slots.stalled"]
        )
        width = OOKAMI.cpu.issue_width
        assert c["pipeline.issue_slots.total"] == pytest.approx(
            width * c["pipeline.makespan_cycles"]
        )

    def test_instructions_equal_body_times_iters(self):
        compiled, _, c = _schedule_under_counters("simple")
        n_body = len(compiled.stream.body)
        assert c["pipeline.instructions"] == n_body * c["pipeline.iterations"]
        assert c["pipeline.issue_slots.used"] == c["pipeline.instructions"]

    def test_instr_mix_sums_to_instructions(self):
        _, _, c = _schedule_under_counters("exp")
        assert sum(c.group("pipeline.instr_mix").values()) == (
            c["pipeline.instructions"]
        )

    def test_steady_cycles_match_schedule_result(self):
        _, sched, c = _schedule_under_counters("gather")
        iters = c["pipeline.iterations"]
        assert c["pipeline.steady_cycles"] == pytest.approx(
            sched.cycles_per_iter * iters
        )

    def test_pipe_busy_bounded_by_makespan(self):
        _, _, c = _schedule_under_counters("exp")
        makespan = c["pipeline.makespan_cycles"]
        for pipe, busy in c.group("pipeline.pipe_busy").items():
            assert busy <= makespan + 1e-9, pipe


class TestExecutorByteAccounting:
    def test_memory_bytes_equal_stream_footprint(self):
        """One full pass over each stream moves exactly its footprint."""
        system = get_system("ookami")
        compiled = compile_loop(
            build_loop("simple", n=2_000_000), get_toolchain("fujitsu"),
            system.cpu,
        )
        with ProfileScope() as c:
            sched = PipelineScheduler(system.cpu).steady_state(compiled.stream)
            KernelExecutor(system).run(
                sched, compiled.mem_streams, n_iters=compiled.n_iters
            )
        bytes_in = sum(
            v for k, v in c.group("memory.levels").items()
            if k.endswith("bytes_in")
        )
        footprint = sum(s.footprint for s in compiled.mem_streams)
        # n_iters is rounded up to whole vector iterations, so the counter
        # may exceed the footprint by less than one iteration's traffic
        per_iter = sum(s.bytes_per_iter for s in compiled.mem_streams)
        assert footprint <= bytes_in <= footprint + per_iter

    def test_compute_cycles_reconcile_with_seconds(self):
        system = get_system("ookami")
        compiled = compile_loop(
            build_loop("gather"), get_toolchain("fujitsu"), system.cpu
        )
        with ProfileScope() as c:
            sched = PipelineScheduler(system.cpu).steady_state(compiled.stream)
            run = KernelExecutor(system).run(
                sched, compiled.mem_streams, n_iters=compiled.n_iters
            )
        clock_hz = run.clock_ghz * 1e9
        assert c["exec.compute_cycles"] / clock_hz == pytest.approx(
            run.compute_seconds, rel=1e-12
        )
        assert c["exec.seconds"] == pytest.approx(run.seconds, rel=1e-12)

    def test_stream_seconds_sum_to_memory_seconds(self):
        system = get_system("ookami")
        compiled = compile_loop(
            build_loop("gather", n=2_000_000), get_toolchain("fujitsu"),
            system.cpu,
        )
        with ProfileScope() as c:
            sched = PipelineScheduler(system.cpu).steady_state(compiled.stream)
            run = KernelExecutor(system).run(
                sched, compiled.mem_streams, n_iters=compiled.n_iters
            )
        assert c.total("exec.stream_seconds") == pytest.approx(
            run.memory_seconds, rel=1e-12
        )
        assert run.bound == "memory"
        assert c["exec.bound.memory"] == 1.0

    def test_hidden_seconds_is_min_component(self):
        system = get_system("ookami")
        compiled = compile_loop(
            build_loop("simple", n=2_000_000), get_toolchain("fujitsu"),
            system.cpu,
        )
        sched = PipelineScheduler(system.cpu).steady_state(compiled.stream)
        run = KernelExecutor(system).run(
            sched, compiled.mem_streams, n_iters=compiled.n_iters
        )
        assert run.hidden_seconds == min(
            run.compute_seconds, run.memory_seconds
        )
        assert run.seconds == max(run.compute_seconds, run.memory_seconds)


class TestCacheSimCounters:
    def test_trace_replay_matches_cachesim_exactly(self):
        """measure_trace counters == the CacheSim's own counts, exactly."""
        addrs = gather_trace(4096, short=False)
        with ProfileScope() as c:
            stats = measure_trace(addrs, capacity=16 * 256, line=256)
        # independent replica of the same replay
        sim = CacheSim(16 * 256, 256, 4)
        sim.access_trace(addrs)
        assert c["cachesim.accesses"] == len(addrs) == stats.accesses
        assert c["cachesim.hits"] == sim.hits
        assert c["cachesim.misses"] == sim.misses
        assert c["cachesim.evictions"] == sim.evictions
        assert c["cachesim.bytes_in"] == sim.misses * 256
        assert c["cachesim.bytes_in"] == stats.bytes_transferred
        assert c["cachesim.bytes_out"] == sim.evictions * 256

    def test_eviction_counter_semantics(self):
        sim = CacheSim(capacity=2 * 64, line=64, assoc=1)  # 2 sets, 1 way
        assert not sim.access(0)      # miss, fill (no eviction)
        assert not sim.access(128)    # same set, miss, evicts line 0
        assert sim.misses == 2
        assert sim.evictions == 1
        sim.reset_stats()
        assert sim.evictions == 0

    def test_counters_off_by_default(self):
        addrs = gather_trace(512, short=True)
        measure_trace(addrs, capacity=16 * 256, line=256)  # no scope: no error


class TestOpenMPCounters:
    def _model(self):
        return OpenMPModel(OOKAMI, RuntimeTraits("test", fork_join_us=2.0,
                                                 barrier_us_log2=0.5))

    def test_local_remote_byte_split_first_touch(self):
        work = WorkDecomposition(compute_serial_s=1.0, contig_bytes=4e9)
        with ProfileScope() as c:
            self._model().run(work, 48, PagePlacement.FIRST_TOUCH)
        assert c["omp.bytes.local"] == pytest.approx(4e9)
        assert c.get("omp.bytes.remote", 0.0) == pytest.approx(0.0)

    def test_local_remote_byte_split_single_domain(self):
        work = WorkDecomposition(compute_serial_s=1.0, contig_bytes=4e9)
        with ProfileScope() as c:
            self._model().run(work, 48, PagePlacement.SINGLE_DOMAIN)
        # 4 active CMGs, pages all on CMG 0: 1/4 of traffic is local
        assert c["omp.bytes.local"] == pytest.approx(1e9)
        assert c["omp.bytes.remote"] == pytest.approx(3e9)

    def test_imbalance_seconds(self):
        work = WorkDecomposition(compute_serial_s=1.0, imbalance=0.2)
        model = self._model()
        with ProfileScope() as c:
            run = model.run(work, 12, PagePlacement.FIRST_TOUCH)
        balanced = model.run(
            WorkDecomposition(compute_serial_s=1.0), 12,
            PagePlacement.FIRST_TOUCH,
        )
        assert c["omp.imbalance_seconds"] == pytest.approx(
            run.compute_seconds - balanced.compute_seconds
        )

    def test_overhead_split_sums_to_region_overhead(self):
        work = WorkDecomposition(compute_serial_s=1.0, regions=100)
        model = self._model()
        with ProfileScope() as c:
            run = model.run(work, 48, PagePlacement.FIRST_TOUCH)
        assert (
            c["omp.fork_join_seconds"] + c["omp.barrier_seconds"]
        ) == pytest.approx(run.overhead_seconds)

    def test_single_thread_emits_no_barrier(self):
        work = WorkDecomposition(compute_serial_s=1.0, regions=10)
        with ProfileScope() as c:
            self._model().run(work, 1, PagePlacement.FIRST_TOUCH)
        assert "omp.barrier_seconds" not in c
        assert "omp.fork_join_seconds" not in c
