"""IR builders + reference numerics for the SpMV/stencil kernels."""

import numpy as np
import pytest

from repro.compilers.ir import Reduce, Store
from repro.spmv.kernels import (
    SELL_CHUNK,
    SELL_SIGMA,
    SPMV_KERNEL_NAMES,
    build_spmv_loop,
    padded_trip_count,
    spmv_reference_run,
)
from repro.validate.ir import verify_loop


class TestBuilders:
    @pytest.mark.parametrize("name", SPMV_KERNEL_NAMES)
    def test_loops_are_well_formed(self, name):
        loop = build_spmv_loop(name)
        assert loop.name == name
        assert loop.length >= 1
        assert verify_loop(loop) == []

    def test_unknown_name_rejected(self):
        with pytest.raises(Exception):
            build_spmv_loop("spmv_nope")

    def test_crs_models_a_scattered_gather(self):
        loop = build_spmv_loop("spmv_crs", n=4096)
        assert loop.arrays["x"].pattern == "random"
        assert loop.arrays["col"].elem_size == 4
        assert isinstance(loop.body[0], Reduce)

    def test_sell_models_coalesced_windows_and_padding(self):
        loop = build_spmv_loop("spmv_sell", n=4096)
        assert loop.arrays["x"].pattern == "window128"
        # padded trip count exceeds the true nnz by 1/beta > 1
        crs = build_spmv_loop("spmv_crs", n=4096)
        assert loop.length == padded_trip_count(4096)
        assert loop.length > 0 and crs.length > 0

    def test_sell_padding_exceeds_nnz(self):
        # padded traversal streams at least as many elements as nnz
        from repro.spmv.matrices import hpcg_like

        mat = hpcg_like(4096)
        layout = mat.sell(chunk=SELL_CHUNK, sigma=SELL_SIGMA)
        assert layout.padded_nnz >= mat.nnz
        assert padded_trip_count(4096) >= round(4096 * mat.avg_row_length)

    @pytest.mark.parametrize("name,streams", [
        ("stencil2d", {"xc", "xn", "xs", "xw", "xe", "y"}),
        ("stencil3d", {"xc", "xd", "xu", "xn", "xs", "xw", "xe", "y"}),
    ])
    def test_stencil_layer_conditions(self, name, streams):
        loop = build_spmv_loop(name, n=1 << 16)
        assert set(loop.arrays) == streams
        assert isinstance(loop.body[0], Store)
        # distinct reuse distances carry distinct footprints:
        # full grid > neighbouring rows/planes > in-row neighbours
        a = loop.arrays
        assert a["xc"].footprint > a["xn"].footprint > a["xw"].footprint
        assert a["y"].footprint == a["xc"].footprint

    def test_problem_size_scales_footprints(self):
        small = build_spmv_loop("spmv_crs", n=1 << 12)
        large = build_spmv_loop("spmv_crs", n=1 << 20)
        assert large.arrays["x"].footprint > small.arrays["x"].footprint
        assert large.length > small.length


class TestReferenceNumerics:
    def test_crs_matches_dense_matvec(self):
        inputs, y = spmv_reference_run("spmv_crs", n=128, seed=3)
        rowptr, col, val, x = (
            inputs["rowptr"], inputs["col"], inputs["val"], inputs["x"])
        dense = np.zeros((128, 128))
        for row in range(128):
            for j in range(rowptr[row], rowptr[row + 1]):
                dense[row, col[j]] += val[j]
        np.testing.assert_allclose(y, dense @ x, rtol=1e-12, atol=1e-12)

    def test_sell_padded_traversal_matches_crs(self):
        # the padded-SELL vs CRS assertion runs inside the reference
        inputs, y = spmv_reference_run("spmv_sell", n=256, seed=5)
        assert y.shape == (256,)
        assert np.isfinite(y).all()

    @pytest.mark.parametrize("name,dims", [("stencil2d", 2),
                                           ("stencil3d", 3)])
    def test_stencil_weights_sum_to_one(self, name, dims):
        # a constant field is a fixed point of the Jacobi sweep
        inputs, out = spmv_reference_run(name, n=4 ** dims, seed=1)
        const = np.ones_like(inputs["x"])
        if dims == 2:
            expect = 0.5 + 4 * 0.125
        else:
            expect = 0.4 + 6 * 0.1
        assert expect == 1.0
        side = inputs["x"].shape[0]
        assert out.shape == (side,) * dims

    def test_stencil2d_periodic_shift_equivariance(self):
        inputs, out = spmv_reference_run("stencil2d", n=256, seed=9)
        grid = inputs["x"]
        shifted_in = np.roll(grid, 3, axis=0)
        expect = 0.5 * shifted_in + 0.125 * (
            np.roll(shifted_in, 1, 0) + np.roll(shifted_in, -1, 0)
            + np.roll(shifted_in, 1, 1) + np.roll(shifted_in, -1, 1)
        )
        np.testing.assert_allclose(np.roll(out, 3, axis=0), expect,
                                   rtol=1e-12, atol=1e-12)
