"""Storage-layout model: row-length distributions, CRS, SELL-C-sigma."""

import pytest

from repro.spmv.matrices import (
    INDEX_BYTES,
    VALUE_BYTES,
    SparseMatrix,
    grid_points,
    hpcg_like,
    random_matrix,
    sell_beta,
)


class TestSparseMatrix:
    def test_nnz_and_mean(self):
        mat = SparseMatrix("t", 4, (3, 5, 2, 6), structured=False)
        assert mat.nnz == 16
        assert mat.avg_row_length == 4.0

    def test_crs_byte_accounting(self):
        mat = SparseMatrix("t", 4, (3, 5, 2, 6), structured=False)
        crs = mat.crs()
        assert crs.bytes_values == 16 * VALUE_BYTES
        assert crs.bytes_colidx == 16 * INDEX_BYTES
        assert crs.bytes_rowptr == 5 * INDEX_BYTES
        assert crs.bytes_total == (
            crs.bytes_values + crs.bytes_colidx + crs.bytes_rowptr
        )

    def test_sell_pads_each_chunk_to_its_longest_row(self):
        # two chunks of 2: sorted lengths (6,5) and (3,2)
        mat = SparseMatrix("t", 4, (3, 5, 2, 6), structured=False)
        layout = mat.sell(chunk=2, sigma=4)
        assert layout.padded_nnz == 6 * 2 + 3 * 2
        assert layout.beta == pytest.approx(16 / 18)

    def test_sigma_sorting_reduces_padding(self):
        # alternating short/long rows: with sigma == chunk the sort
        # cannot move rows between chunks, so every chunk pads to 27;
        # a window over all rows groups like with like
        lengths = tuple(27 if i % 2 else 2 for i in range(64))
        assert sell_beta(lengths, chunk=8, sigma=64) > \
            sell_beta(lengths, chunk=8, sigma=8)

    def test_beta_bounds(self):
        for sigma in (1, 8, 512):
            beta = sell_beta(tuple(range(1, 65)), chunk=8, sigma=sigma)
            assert 0.0 < beta <= 1.0

    def test_uniform_rows_have_no_padding(self):
        assert sell_beta((5,) * 32, chunk=8, sigma=32) == 1.0

    def test_sell_rejects_bad_parameters(self):
        mat = SparseMatrix("t", 2, (1, 2), structured=False)
        with pytest.raises(ValueError):
            mat.sell(chunk=0)
        with pytest.raises(ValueError):
            mat.sell(sigma=0)


class TestGenerators:
    def test_hpcg_like_row_lengths(self):
        mat = hpcg_like(512)
        assert mat.structured
        assert mat.nrows == 512
        assert set(mat.row_lengths) <= {18, 27}
        assert 18.0 <= mat.avg_row_length <= 27.0

    def test_random_matrix_is_deterministic_and_hits_the_mean(self):
        a = random_matrix(4096, avg_nnz_per_row=16, seed=7)
        b = random_matrix(4096, avg_nnz_per_row=16, seed=7)
        assert a.row_lengths == b.row_lengths
        assert not a.structured
        assert a.avg_row_length == pytest.approx(16.0, rel=0.05)
        assert min(a.row_lengths) >= 1

    def test_random_matrix_rejects_bad_mean(self):
        with pytest.raises(ValueError):
            random_matrix(16, avg_nnz_per_row=0)

    def test_grid_points(self):
        assert grid_points(1 << 24, 2) == 4096
        assert grid_points(1 << 24, 3) == 256
        assert grid_points(1, 3) == 4  # floor
