"""Tests for the CMG/NUMA topology model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.numa import CMGTopology, PagePlacement
from repro.machine.systems import get_system


@pytest.fixture()
def a64fx() -> CMGTopology:
    return get_system("ookami").topology


class TestTopologyBasics:
    def test_total_cores(self, a64fx):
        assert a64fx.total_cores == 48

    def test_active_domains_close_packing(self, a64fx):
        assert a64fx.active_domains(1) == 1
        assert a64fx.active_domains(12) == 1
        assert a64fx.active_domains(13) == 2
        assert a64fx.active_domains(48) == 4

    def test_active_domains_validation(self, a64fx):
        with pytest.raises(ValueError):
            a64fx.active_domains(0)
        with pytest.raises(ValueError):
            a64fx.active_domains(49)


class TestBandwidthUnderPlacement:
    def test_first_touch_scales_with_domains(self, a64fx):
        bw12 = a64fx.aggregate_bandwidth_gbs(12, PagePlacement.FIRST_TOUCH)
        bw48 = a64fx.aggregate_bandwidth_gbs(48, PagePlacement.FIRST_TOUCH)
        assert bw48 == pytest.approx(4 * bw12)

    def test_single_domain_is_the_pathology(self, a64fx):
        """The Fujitsu-default mechanism: 48 threads against one CMG's
        controller get a fraction of the first-touch bandwidth."""
        ft = a64fx.aggregate_bandwidth_gbs(48, PagePlacement.FIRST_TOUCH)
        sd = a64fx.aggregate_bandwidth_gbs(48, PagePlacement.SINGLE_DOMAIN)
        assert sd < ft / 3

    def test_single_domain_equals_local_when_one_domain_active(self, a64fx):
        sd = a64fx.aggregate_bandwidth_gbs(12, PagePlacement.SINGLE_DOMAIN)
        assert sd == pytest.approx(a64fx.local_bw_gbs)

    def test_interleave_between_extremes(self, a64fx):
        ft = a64fx.aggregate_bandwidth_gbs(48, PagePlacement.FIRST_TOUCH)
        sd = a64fx.aggregate_bandwidth_gbs(48, PagePlacement.SINGLE_DOMAIN)
        il = a64fx.aggregate_bandwidth_gbs(48, PagePlacement.INTERLEAVE)
        assert sd < il <= ft

    def test_latency_factor(self, a64fx):
        assert a64fx.latency_factor(PagePlacement.FIRST_TOUCH, 48) == 1.0
        assert a64fx.latency_factor(PagePlacement.SINGLE_DOMAIN, 48) > 1.0
        assert a64fx.latency_factor(PagePlacement.SINGLE_DOMAIN, 12) == 1.0

    @given(st.integers(min_value=1, max_value=48))
    @settings(max_examples=30, deadline=None)
    def test_first_touch_dominates_everywhere(self, threads):
        topo = get_system("ookami").topology
        ft = topo.aggregate_bandwidth_gbs(threads, PagePlacement.FIRST_TOUCH)
        sd = topo.aggregate_bandwidth_gbs(threads, PagePlacement.SINGLE_DOMAIN)
        assert ft >= sd > 0


class TestValidation:
    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CMGTopology(domains=0, cores_per_domain=12,
                        local_bw_gbs=230, remote_bw_gbs=60)
