"""Tests for the per-core timing models (repro.machine.microarch)."""

import pytest

from repro.machine.isa import Op, Pipe
from repro.machine.microarch import (
    A64FX,
    EPYC_7742,
    KNL_7250,
    Microarch,
    OpTiming,
    SKYLAKE_6140,
    SKYLAKE_8160,
    THUNDERX2,
)


class TestOpTiming:
    def test_valid(self):
        t = OpTiming(9, 1, frozenset({Pipe.FLA}))
        assert t.latency == 9

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            OpTiming(0, 1, frozenset({Pipe.FLA}))
        with pytest.raises(ValueError):
            OpTiming(1, 0, frozenset({Pipe.FLA}))

    def test_rejects_empty_pipes(self):
        with pytest.raises(ValueError):
            OpTiming(1, 1, frozenset())


class TestA64FXModel:
    def test_peak_flops_matches_paper(self):
        # "1.8 GHz x 2 FMA/cycle x 2 FLOPs/FMA x 8 64-bit words/vector
        #  = 57.6 GFLOP/s/core"
        assert A64FX.peak_gflops_core() == pytest.approx(57.6)

    def test_lanes(self):
        assert A64FX.lanes_f64 == 8

    def test_fixed_clock(self):
        assert A64FX.clock_ghz == A64FX.allcore_clock_ghz == 1.8

    def test_fsqrt_is_blocking_134_cycles(self):
        # the paper: "blocking with a 134 cycle latency for a 512-bit vector"
        t = A64FX.timing(Op.FSQRT)
        assert t.latency == 134
        assert t.rtput == t.latency  # blocking: not pipelined

    def test_fdiv_is_blocking(self):
        t = A64FX.timing(Op.FDIV)
        assert t.rtput == t.latency

    def test_fma_latency_nine(self):
        assert A64FX.timing(Op.FMA).latency == 9

    def test_has_fexpa(self):
        assert A64FX.has_fexpa
        assert A64FX.supports(Op.FEXPA)

    def test_gather_pair_coalescing(self):
        assert A64FX.gather_pair_coalescing

    def test_two_fp_pipes(self):
        assert A64FX.timing(Op.FMA).pipes == frozenset({Pipe.FLA, Pipe.FLB})


class TestSkylakeModel:
    def test_no_fexpa(self):
        assert not SKYLAKE_6140.has_fexpa
        assert not SKYLAKE_6140.supports(Op.FEXPA)

    def test_fexpa_lookup_raises(self):
        with pytest.raises(KeyError, match="fexpa"):
            SKYLAKE_6140.timing(Op.FEXPA)

    def test_divide_is_pipelined(self):
        t = SKYLAKE_6140.timing(Op.FDIV)
        assert t.rtput < t.latency  # dedicated, partially pipelined unit

    def test_boost_above_allcore(self):
        assert SKYLAKE_6140.clock_ghz > SKYLAKE_6140.allcore_clock_ghz

    def test_skx_allcore_matches_table3(self):
        # Table III: 1.4 GHz AVX-512 all-core on the Platinum 8160
        assert SKYLAKE_8160.allcore_clock_ghz == 1.4
        assert SKYLAKE_8160.peak_gflops_core(allcore=True) == pytest.approx(44.8)

    def test_no_gather_coalescing(self):
        assert not SKYLAKE_6140.gather_pair_coalescing


class TestOtherSystems:
    def test_knl_peak(self):
        assert KNL_7250.peak_gflops_core(allcore=True) == pytest.approx(44.8)

    def test_epyc_peak(self):
        # AVX2: 2.25 x 2 x 4 x 2 = 36 GFLOP/s (Table III)
        assert EPYC_7742.peak_gflops_core(allcore=True) == pytest.approx(36.0)
        assert EPYC_7742.lanes_f64 == 4

    def test_thunderx2_neon_width(self):
        assert THUNDERX2.vector_bits == 128


class TestMicroarchValidation:
    def test_rejects_bad_vector_bits(self):
        with pytest.raises(ValueError):
            Microarch(
                name="bad", vector_bits=100, clock_ghz=1.0,
                allcore_clock_ghz=1.0, issue_width=4, window=16,
                timings={},
            )

    def test_rejects_bad_issue_width(self):
        with pytest.raises(ValueError):
            Microarch(
                name="bad", vector_bits=128, clock_ghz=1.0,
                allcore_clock_ghz=1.0, issue_width=0, window=16,
                timings={},
            )

    def test_timing_error_names_machine(self):
        bare = Microarch(
            name="bare-test", vector_bits=128, clock_ghz=1.0,
            allcore_clock_ghz=1.0, issue_width=2, window=16,
            timings={Op.FADD: OpTiming(1, 1, frozenset({Pipe.FLA}))},
        )
        with pytest.raises(KeyError, match="bare-test"):
            bare.timing(Op.FMUL)
