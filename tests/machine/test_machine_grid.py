"""Cross-machine grid sweeps (repro.machine.grid) and the crossover
report (repro.machine.crossover).

The load-bearing check is retarget soundness: compile sharing reuses
one lowered stream across every machine with the same codegen
signature, so a retargeted ``CompiledLoop`` must predict and schedule
exactly like a direct per-machine compile.
"""

import pytest

from repro.compilers.cache import cached_compile
from repro.compilers.toolchains import TOOLCHAINS
from repro.ecm.model import predict_compiled
from repro.engine.scheduler import PipelineScheduler
from repro.kernels.catalog import build_kernel
from repro.machine.crossover import (
    DEFAULT_MACHINES,
    REPORT_FORMAT,
    crossover_report,
    render,
)
from repro.machine.grid import (
    DEFAULT_KERNELS,
    GRID_FORMAT,
    codegen_signature,
    compile_for_machines,
    machine_grid_predictions,
    run_machine_grid,
)
from repro.machine.spec import grid_specs

RTOL = 1e-9


class TestRetargetExactness:
    """replace(compiled, march=m) == compile_loop(..., m), bit for bit."""

    @pytest.mark.parametrize("kernel", ["simple", "gather", "sqrt"])
    def test_retarget_matches_direct_compile(self, kernel):
        specs = grid_specs(12)
        marches = [s.build_core() for s in specs]
        shared, skipped = compile_for_machines(kernel, marches)
        assert not skipped
        loop = build_kernel(kernel)
        for march, compiled in zip(marches, shared):
            direct = cached_compile(
                loop, TOOLCHAINS[compiled.toolchain.name], march)
            assert compiled.march is march
            # the shared stream keeps the first sharer's label; the
            # lowered instructions must be identical
            assert compiled.stream.body == direct.stream.body, march.name
            assert (compiled.stream.elements_per_iter
                    == direct.stream.elements_per_iter), march.name
            assert compiled.cycles_per_element == pytest.approx(
                direct.cycles_per_element, rel=RTOL), march.name
            retargeted = PipelineScheduler(march).steady_state(
                compiled.stream)
            ref = PipelineScheduler(march).steady_state(direct.stream)
            assert retargeted.cycles_per_iter == pytest.approx(
                ref.cycles_per_iter, rel=RTOL), march.name
            assert retargeted.bound == ref.bound, march.name

    def test_retarget_matches_direct_ecm(self):
        specs = grid_specs(8)
        marches = [s.build_core() for s in specs]
        shared, _ = compile_for_machines("simple", marches)
        loop = build_kernel("simple")
        for spec, march, compiled in zip(specs, marches, shared):
            direct = cached_compile(
                loop, TOOLCHAINS[compiled.toolchain.name], march)
            system = spec.build_system()
            a = predict_compiled(compiled, system)
            b = predict_compiled(direct, system)
            assert a.cycles_per_iter == b.cycles_per_iter, march.name
            assert a.seconds == b.seconds, march.name
            assert a.bound == b.bound, march.name

    def test_signature_sharing_is_real(self):
        """Machines differing only in window/clock/bandwidth share one
        compiled stream object."""
        specs = grid_specs(64)
        marches = [s.build_core() for s in specs]
        shared, _ = compile_for_machines("simple", marches)
        sigs = {codegen_signature(m) for m in marches}
        streams = {id(c.stream) for c in shared if c is not None}
        assert len(streams) <= len(sigs) * len(TOOLCHAINS)
        assert len(streams) < len(marches)


class TestMachineGridPredictions:
    def test_batch_matches_scalar(self):
        specs = grid_specs(24)
        items, preds, skipped = machine_grid_predictions(
            specs, kernels=("simple", "exp"))
        assert len(preds) == len(items)
        for (compiled, system, win), pred in zip(items, preds):
            scalar = predict_compiled(compiled, system, window=win)
            assert pred.cycles_per_iter == scalar.cycles_per_iter
            assert pred.seconds == scalar.seconds
            assert pred.bound == scalar.bound

    def test_fexpa_kernel_skips_machines_without_the_unit(self):
        """exp on RVV-based machines falls back past fujitsu/cray; the
        machines still compile via a non-FEXPA toolchain."""
        specs = grid_specs(24)
        items, _, skipped = machine_grid_predictions(
            specs, kernels=("exp",))
        assert len(items) + skipped == len(specs)


class TestRunMachineGrid:
    def test_document_structure(self):
        doc = run_machine_grid(machines=48, kernels=("simple", "sqrt"),
                               engine_kernels=("simple",))
        assert doc["format"] == GRID_FORMAT
        assert doc["machines"] == 48
        assert doc["ecm_points"] == 2 * 48 - doc["skipped"]
        assert doc["engine_points"] == 48
        assert doc["points"] == doc["ecm_points"] + doc["engine_points"]
        assert doc["points_per_sec"] > 0
        assert set(doc["shard"]) >= {"routing", "workers", "jobs"}
        assert set(doc["winners"]) == {"simple", "sqrt"}
        for win in doc["winners"].values():
            assert set(win) == {"kernel", "machine", "toolchain",
                                "seconds", "cycles_per_element", "bound"}

    def test_winner_is_the_minimum(self):
        doc = run_machine_grid(machines=32, kernels=("simple",),
                               engine_kernels=(), include_rows=True)
        rows = [r for r in doc["rows"] if r["kernel"] == "simple"]
        assert doc["winners"]["simple"]["seconds"] == min(
            r["seconds"] for r in rows)

    def test_thousand_machine_grid_is_enumerable(self):
        specs = grid_specs(1000)
        assert len(specs) == 1000
        assert len({s.name for s in specs}) == 1000


class TestCrossoverReport:
    @pytest.fixture(scope="class")
    def report(self):
        return crossover_report()

    def test_structure(self, report):
        assert report["format"] == REPORT_FORMAT
        assert set(report["machines"]) == set(DEFAULT_MACHINES)
        assert report["points"] > 0
        for entry in report["kernels"].values():
            assert entry["winner"] in entry["per_machine"]

    def test_reproduces_the_paper_crossover(self, report):
        """Figs. 1-2 qualitatively: Skylake's clock wins the small
        latency-bound kernels, the A64FX's HBM2 wins the
        bandwidth-bound sparse/stencil workloads."""
        kernels = report["kernels"]
        assert kernels["simple"]["winner"] != "a64fx"
        for kernel in ("spmv_sell", "stencil2d", "stencil3d"):
            assert kernels[kernel]["a64fx_over_skylake"] > 1.0, kernel
        assert 1 <= report["a64fx_wins"] < len(kernels)

    def test_fexpa_only_recipes_skip_machines(self, report):
        """rvv has no FEXPA: fujitsu/cray exp recipes must not appear
        for it, but exp still scores via arm/gnu."""
        assert "exp" in report["kernels"]
        assert "rvv" in report["kernels"]["exp"]["per_machine"]

    def test_render(self, report):
        text = render(report)
        assert "machine crossover" in text
        for key in DEFAULT_MACHINES:
            assert key in text
