"""Declarative machine specs (repro.machine.spec).

The tentpole contract: machines are data.  A preset spec serialized to
JSON and loaded back must be the *same* machine — equal spec, the same
cached ``Microarch``/``System`` objects, and (checked against the
frozen seed scheduler) bit-identical schedules across the full Fig. 1/2
catalog x all five toolchains.
"""

import dataclasses
import json

import pytest

from repro.compilers.codegen import compile_loop
from repro.compilers.toolchains import TOOLCHAINS
from repro.engine._reference import ReferenceScheduler
from repro.engine.scheduler import PipelineScheduler
from repro.kernels.catalog import ALL_KERNEL_NAMES, build_kernel
from repro.machine import spec as mspec
from repro.machine.microarch import (
    A64FX,
    EPYC_7742,
    KNL_7250,
    SKYLAKE_6140,
    SKYLAKE_8160,
    THUNDERX2,
)
from repro.machine.spec import (
    A64FX_SPEC,
    GRID_BASES,
    MACHINE_SPECS,
    RVV_SPEC,
    SKYLAKE_6140_SPEC,
    SPEC_FORMAT,
    MachineSpec,
    get_machine_spec,
    grid_specs,
)
from repro.machine.systems import OOKAMI, SKYLAKE_36C, get_system
from repro.perf.counters import ProfileScope

RTOL = 1e-9

#: distinct preset specs (the registry aliases some keys)
PRESETS = sorted({id(s): k for k, s in MACHINE_SPECS.items()}.values())


class TestRoundTrip:
    @pytest.mark.parametrize("key", PRESETS)
    def test_json_round_trip_is_equal(self, key):
        spec = MACHINE_SPECS[key]
        rebuilt = MachineSpec.from_json(spec.to_json())
        assert rebuilt == spec

    @pytest.mark.parametrize("key", PRESETS)
    def test_round_trip_builds_the_same_core(self, key):
        """Value-equal specs share one cached Microarch — id-keyed
        schedule/ECM memos keep working across a serialize/load hop."""
        spec = MACHINE_SPECS[key]
        rebuilt = MachineSpec.from_json(spec.to_json())
        assert rebuilt.build_core() is spec.build_core()

    def test_round_trip_builds_the_same_system(self):
        rebuilt = MachineSpec.from_json(A64FX_SPEC.to_json())
        assert rebuilt.build_system() is A64FX_SPEC.build_system()

    def test_format_tag(self):
        doc = A64FX_SPEC.to_dict()
        assert doc["format"] == SPEC_FORMAT
        assert json.loads(A64FX_SPEC.to_json())["format"] == SPEC_FORMAT

    def test_rejects_wrong_format(self):
        doc = A64FX_SPEC.to_dict()
        doc["format"] = "repro.machine-spec/99"
        with pytest.raises(ValueError):
            MachineSpec.from_dict(doc)

    def test_timings_are_canonically_ordered(self):
        """Construction order must not leak into equality/caching."""
        spec = A64FX_SPEC
        shuffled = dataclasses.replace(
            spec, timings=tuple(reversed(spec.timings)))
        assert shuffled == spec
        assert shuffled.build_core() is spec.build_core()


class TestPresetIdentity:
    """The in-code constants ARE the spec-built machines."""

    @pytest.mark.parametrize("key,march", [
        ("a64fx", A64FX),
        ("skylake-6140", SKYLAKE_6140),
        ("skylake-8160", SKYLAKE_8160),
        ("knl", KNL_7250),
        ("epyc", EPYC_7742),
        ("thunderx2", THUNDERX2),
    ])
    def test_build_core_is_the_module_constant(self, key, march):
        assert get_machine_spec(key).build_core() is march

    @pytest.mark.parametrize("key,system", [
        ("a64fx", OOKAMI),
        ("skylake-6140", SKYLAKE_36C),
    ])
    def test_build_system_is_the_registry_system(self, key, system):
        assert get_machine_spec(key).build_system() is system

    def test_system_cpu_identity(self):
        assert OOKAMI.cpu is A64FX
        assert get_system("rvv").cpu is RVV_SPEC.build_core()

    def test_a64fx_spec_matches_paper_numbers(self):
        march = A64FX_SPEC.build_core()
        assert march.peak_gflops_core() == pytest.approx(57.6)
        assert march.lanes_f64 == 8
        assert not march.mem_overlap

    def test_get_machine_spec_unknown_key(self):
        with pytest.raises(KeyError, match="available"):
            get_machine_spec("cray-1")


class TestValidation:
    def test_rejects_unknown_isa(self):
        with pytest.raises(ValueError, match="unknown vector ISA"):
            dataclasses.replace(A64FX_SPEC, isa="vmx")

    def test_rejects_unknown_op_name(self):
        with pytest.raises(ValueError):
            mspec.OpTimingSpec(op="fmaddle", latency=1, rtput=1,
                               pipes=("fla",))

    def test_rejects_unknown_pipe_name(self):
        with pytest.raises(ValueError):
            mspec.OpTimingSpec(op="fadd", latency=1, rtput=1,
                               pipes=("fpu9",))

    def test_rejects_incomplete_op_coverage(self):
        with pytest.raises(ValueError, match="missing"):
            dataclasses.replace(A64FX_SPEC, timings=A64FX_SPEC.timings[:5])

    def test_rejects_fexpa_timing_without_fexpa(self):
        with pytest.raises(ValueError, match="fexpa"):
            dataclasses.replace(SKYLAKE_6140_SPEC,
                                timings=A64FX_SPEC.timings)

    def test_rejects_core_topology_mismatch(self):
        with pytest.raises(ValueError):
            dataclasses.replace(A64FX_SPEC, cores=47)

    def test_rejects_bad_vector_bits(self):
        with pytest.raises(ValueError):
            dataclasses.replace(A64FX_SPEC, vector_bits=96)

    def test_core_only_spec_has_no_system(self):
        tx2 = get_machine_spec("thunderx2")
        assert not tx2.has_system
        with pytest.raises(ValueError, match="core-only"):
            tx2.build_system()


#: the golden-equivalence suite: Fig. 1 variants + Fig. 2 math kernels
#: crossed with every toolchain (FEXPA-only recipes skip non-fexpa
#: machines exactly like compile_loop does)
_SUITE = [(k, tc) for k in ALL_KERNEL_NAMES for tc in TOOLCHAINS]


class TestSpecBitExactness:
    """A Microarch built fresh from the spec (bypassing the build
    cache) schedules bit-identically to the seed reference scheduler
    and to the in-code constant, across the full catalog."""

    @pytest.mark.parametrize("key,march", [
        ("a64fx", A64FX), ("skylake-6140", SKYLAKE_6140),
    ])
    def test_fresh_build_equals_constant(self, key, march):
        fresh = mspec._build_core.__wrapped__(get_machine_spec(key))
        assert fresh is not march
        assert fresh == march

    @pytest.mark.parametrize("key,march", [
        ("a64fx", A64FX), ("skylake-6140", SKYLAKE_6140),
    ])
    def test_full_catalog_matches_reference(self, key, march):
        fresh = mspec._build_core.__wrapped__(get_machine_spec(key))
        checked = 0
        for kernel, tc_name in _SUITE:
            tc = TOOLCHAINS[tc_name]
            try:
                compiled = compile_loop(build_kernel(kernel), tc, fresh)
            except ValueError:
                # FEXPA-only recipe on a machine without the unit
                continue
            with ProfileScope("ref") as ref_counters:
                ref = ReferenceScheduler(march).steady_state(
                    compiled.stream)
            with ProfileScope("fast") as fast_counters:
                res = PipelineScheduler(fresh).steady_state(
                    compiled.stream)
            assert res.cycles_per_iter == pytest.approx(
                ref.cycles_per_iter, rel=RTOL), (kernel, tc_name)
            assert res.bound == ref.bound, (kernel, tc_name)
            assert fast_counters.as_dict() == pytest.approx(
                ref_counters.as_dict(), rel=RTOL), (kernel, tc_name)
            checked += 1
        assert checked >= len(ALL_KERNEL_NAMES)


class TestGridEnumeration:
    def test_grid_specs_count_and_validity(self):
        specs = grid_specs(1000)
        assert len(specs) == 1000
        sample = specs[::97]
        for s in sample:
            assert isinstance(s, MachineSpec)
            s.build_core()  # every variant must validate and build

    def test_grid_specs_are_unique(self):
        specs = grid_specs(1000)
        assert len({s.name for s in specs}) == 1000

    def test_grid_specs_deterministic(self):
        assert grid_specs(64) == grid_specs(64)
        assert grid_specs(64) == grid_specs(128)[:64]

    def test_grid_bases_cover_three_isas(self):
        assert {b.isa for b in GRID_BASES} == {"sve", "avx512", "rvv"}

    def test_grid_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            grid_specs(0)
