"""Tests for the abstract ISA layer (repro.machine.isa)."""

import pytest

from repro.machine.isa import Instruction, InstructionStream, Op, concat_streams


class TestInstruction:
    def test_basic_construction(self):
        ins = Instruction(Op.FMA, "d", ("a", "b", "c"))
        assert ins.op is Op.FMA
        assert ins.dest == "d"
        assert ins.srcs == ("a", "b", "c")
        assert not ins.carried

    def test_rejects_non_op(self):
        with pytest.raises(TypeError):
            Instruction("fma", "d")  # type: ignore[arg-type]

    def test_carried_requires_dest(self):
        with pytest.raises(ValueError):
            Instruction(Op.FADD, "", ("x",), carried=True)

    def test_overrides_are_optional(self):
        ins = Instruction(Op.CALL, "y", ("x",), latency_override=32.0,
                          rtput_override=32.0)
        assert ins.latency_override == 32.0
        assert ins.rtput_override == 32.0

    def test_frozen(self):
        ins = Instruction(Op.FADD, "d", ("a",))
        with pytest.raises(AttributeError):
            ins.dest = "e"  # type: ignore[misc]


class TestInstructionStream:
    def _simple(self):
        return InstructionStream(
            body=[
                Instruction(Op.VLOAD, "x"),
                Instruction(Op.FMUL, "t", ("x", "x")),
                Instruction(Op.VSTORE, "", ("t",)),
            ],
            elements_per_iter=8,
        )

    def test_len_and_iter(self):
        s = self._simple()
        assert len(s) == 3
        assert [i.op for i in s] == [Op.VLOAD, Op.FMUL, Op.VSTORE]

    def test_counts(self):
        s = self._simple()
        assert s.counts() == {Op.VLOAD: 1, Op.FMUL: 1, Op.VSTORE: 1}

    def test_fp_ops(self):
        s = self._simple()
        assert s.fp_ops() == 1

    def test_elements_per_iter_validation(self):
        with pytest.raises(ValueError):
            InstructionStream(elements_per_iter=0)

    def test_validate_accepts_loop_inputs(self):
        s = self._simple()
        s.validate()  # "x" srcs of FMUL come from the load; fine

    def test_validate_accepts_cross_iteration_reference(self):
        # "u" is produced later in the body: the consumer reads the
        # previous iteration's value (software-pipelined chain) — legal
        s = InstructionStream(
            body=[
                Instruction(Op.FMUL, "t", ("u",)),
                Instruction(Op.FADD, "u", ("t",)),
            ]
        )
        s.validate()

    def test_validate_rejects_self_use_without_carried(self):
        s = InstructionStream(
            body=[Instruction(Op.FADD, "sum", ("sum", "x"))]
        )
        with pytest.raises(ValueError, match="loop-carried"):
            s.validate()

    def test_validate_accepts_carried_accumulator(self):
        s = InstructionStream(
            body=[Instruction(Op.FADD, "sum", ("sum", "x"), carried=True)]
        )
        s.validate()

    def test_append_extend(self):
        s = InstructionStream()
        s.append(Instruction(Op.SALU, "i"))
        s.extend([Instruction(Op.BRANCH, "", ("i",))])
        assert len(s) == 2


class TestConcatStreams:
    def test_concatenates_bodies(self):
        a = InstructionStream(body=[Instruction(Op.VLOAD, "x")],
                              elements_per_iter=8)
        b = InstructionStream(body=[Instruction(Op.VSTORE, "", ("x",))],
                              elements_per_iter=8)
        c = concat_streams([a, b], label="joined")
        assert len(c) == 2
        assert c.label == "joined"

    def test_rejects_mismatched_widths(self):
        a = InstructionStream(body=[Instruction(Op.VLOAD, "x")],
                              elements_per_iter=8)
        b = InstructionStream(body=[Instruction(Op.VLOAD, "y")],
                              elements_per_iter=4)
        with pytest.raises(ValueError):
            concat_streams([a, b])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            concat_streams([])
