"""Trace-driven validation of the analytic memory model."""

import numpy as np
import pytest

from repro._util import KIB
from repro.machine.memory import MemoryHierarchy, MemoryStream
from repro.machine.systems import get_system
from repro.machine.trace import (
    contiguous_trace,
    gather_trace,
    line_utilization_measured,
    measure_trace,
    strided_trace,
)


class TestGenerators:
    def test_contiguous(self):
        t = contiguous_trace(10, elem_size=8, base=100)
        assert list(t[:3]) == [100, 108, 116]

    def test_strided(self):
        t = strided_trace(4, stride_elems=16)
        assert list(t) == [0, 128, 256, 384]

    def test_gather_covers_footprint(self):
        t = gather_trace(1024)
        assert len(np.unique(t)) == 1024
        assert t.max() == 8 * 1023

    def test_short_gather_window_locality(self):
        t = gather_trace(1024, short=True)
        assert np.array_equal(np.unique(t // 128),
                              np.unique(contiguous_trace(1024) // 128))

    def test_validation(self):
        with pytest.raises(ValueError):
            contiguous_trace(0)
        with pytest.raises(ValueError):
            strided_trace(4, 0)


class TestMeasuredVsAnalytic:
    """Ground truth (exact cache replay) vs the analytic rules."""

    def test_contig_utilization_is_one(self):
        assert line_utilization_measured("contig") == pytest.approx(1.0)

    def test_random_utilization_matches_rule(self):
        """Analytic rule: elem_size / line.  A cold random sweep touches
        one element per line transfer."""
        got = line_utilization_measured("random", n=4096, line=256)
        assert got == pytest.approx(8 / 256, rel=0.15)

    def test_window128_recovers_locality(self):
        """The short permutation's window confinement keeps whole lines
        useful — the analytic model's 'window128 ~ full utilization'."""
        got = line_utilization_measured("window128", n=4096, line=256)
        assert got > 0.5  # vs 1/32 for the full permutation

    def test_skylake_line_utilization(self):
        got = line_utilization_measured("random", n=4096, line=64)
        assert got == pytest.approx(8 / 64, rel=0.25)

    def test_l1_resident_stream_all_hits(self):
        """Footprint below capacity -> the second pass hits everywhere,
        matching the analytic serving-level rule."""
        addrs = np.tile(contiguous_trace(2048), 2)  # 16 KiB twice
        stats = measure_trace(addrs, capacity=64 * KIB, line=256)
        assert stats.hit_rate > 0.95

    def test_spilling_stream_misses_on_revisit(self):
        n = 32 * KIB // 8 * 4  # 128 KiB footprint vs 64 KiB cache
        addrs = np.tile(contiguous_trace(n), 2)
        stats = measure_trace(addrs, capacity=64 * KIB, line=256)
        # every line misses on each pass: hit rate ~ 31/32 (spatial only)
        assert stats.hit_rate == pytest.approx(31 / 32, abs=0.01)

    def test_analytic_hierarchy_agrees_on_pattern_ordering(self):
        """The analytic effective-bandwidth ordering (contig > window128
        > random) matches the measured utilization ordering."""
        hier: MemoryHierarchy = get_system("ookami").hierarchy
        bw = {
            p: hier.effective_bw_gbs(
                MemoryStream("x", 64, 1e9, pattern=p), 1.8
            )
            for p in ("contig", "window128", "random")
        }
        util = {p: line_utilization_measured(p)
                for p in ("contig", "window128", "random")}
        assert bw["contig"] >= bw["window128"] > bw["random"]
        assert util["contig"] >= util["window128"] > util["random"]
