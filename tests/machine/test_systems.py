"""Tests for the system catalog — including Table III reproduction."""

import pytest

from repro.bench.expected import TABLE3_EXPECTED
from repro.machine.systems import SYSTEMS, Interconnect, get_system


class TestCatalog:
    def test_lookup_aliases(self):
        assert get_system("ookami") is get_system("a64fx")
        assert get_system("OOKAMI") is get_system("ookami")

    def test_unknown_key(self):
        with pytest.raises(KeyError, match="available"):
            get_system("cray-1")

    def test_ookami_shape(self):
        s = get_system("ookami")
        assert s.cores == 48
        assert s.topology.domains == 4
        assert s.topology.cores_per_domain == 12
        # "32 GB high-bandwidth memory ... (256 Gbyte/s)" per CMG
        assert s.hierarchy.dram_bw_gbs == 256.0
        assert s.hierarchy.domains == 4

    def test_node_bandwidth_is_1tb(self):
        # "high-bandwidth memory (1 TB/s)"
        assert get_system("ookami").node_stream_bw_gbs == pytest.approx(1024.0)

    def test_skylake_36_cores(self):
        assert get_system("skylake").cores == 36

    def test_lulesh_skylake_32_cores(self):
        assert get_system("skylake-6130").cores == 32


class TestTable3:
    """The Table III columns must derive from the machine models."""

    @pytest.mark.parametrize("row", TABLE3_EXPECTED, ids=lambda r: r["system"])
    def test_row(self, row):
        key = {
            "Ookami": "ookami",
            "TACC Stampede 2 SKX": "stampede2-skx",
            "TACC Stampede 2 KNL": "stampede2-knl",
            "PSC Bridges 2": "bridges2",
            "SDSC Expanse": "expanse",
        }[row["system"]]
        s = get_system(key)
        assert s.cores == row["cores"]
        assert s.simd_label == row["simd"]
        assert s.table3_base_ghz == pytest.approx(row["base_ghz"])
        assert s.peak_gflops_core == pytest.approx(row["peak_core"], rel=1e-3)
        assert s.peak_gflops_node == pytest.approx(row["peak_node"], rel=2e-3)


class TestInterconnect:
    def test_transfer_time(self):
        net = Interconnect("test", latency_us=1.0, bw_gbs=10.0)
        assert net.transfer_time_s(0) == pytest.approx(1e-6)
        assert net.transfer_time_s(10e9) == pytest.approx(1.0 + 1e-6)

    def test_rejects_negative_bytes(self):
        net = get_system("ookami").interconnect
        with pytest.raises(ValueError):
            net.transfer_time_s(-1)

    def test_ookami_is_hdr200(self):
        assert "HDR-200" in get_system("ookami").interconnect.name


class TestConsistency:
    @pytest.mark.parametrize("key", sorted(set(SYSTEMS)))
    def test_topology_matches_cores(self, key):
        s = SYSTEMS[key]
        assert s.topology.total_cores == s.cores

    @pytest.mark.parametrize("key", sorted(set(SYSTEMS)))
    def test_positive_peaks(self, key):
        s = SYSTEMS[key]
        assert s.peak_gflops_core > 0
        assert s.node_stream_bw_gbs > 0
