"""Tests for the cache hierarchy model and true cache simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import KIB, MIB
from repro.machine.memory import CacheLevel, CacheSim, MemoryHierarchy, MemoryStream
from repro.machine.systems import get_system


@pytest.fixture()
def a64fx_hier() -> MemoryHierarchy:
    return get_system("ookami").hierarchy


@pytest.fixture()
def skl_hier() -> MemoryHierarchy:
    return get_system("skylake").hierarchy


class TestCacheLevel:
    def test_valid(self):
        lvl = CacheLevel("L1", 64 * KIB, 256, 4, 11, 128)
        assert lvl.capacity == 64 * KIB

    def test_capacity_multiple_of_line(self):
        with pytest.raises(ValueError):
            CacheLevel("L1", 1000, 256, 4, 11, 128)


class TestMemoryStream:
    def test_pattern_validation(self):
        with pytest.raises(ValueError):
            MemoryStream("x", 64, 1024, pattern="diagonal")  # type: ignore[arg-type]

    def test_positive_sizes(self):
        with pytest.raises(ValueError):
            MemoryStream("x", 0, 1024)


class TestServingLevel:
    def test_l1_resident(self, a64fx_hier):
        assert a64fx_hier.serving_level(32 * KIB) == 0

    def test_l2_resident(self, a64fx_hier):
        assert a64fx_hier.serving_level(1 * MIB) == 1

    def test_dram(self, a64fx_hier):
        assert a64fx_hier.serving_level(100 * MIB) == 2

    def test_shared_l2_shrinks_with_sharers(self, a64fx_hier):
        # 4 MB fits the 8 MB CMG L2 alone, but not split 12 ways
        assert a64fx_hier.serving_level(4 * MIB, cores_sharing=1) == 1
        assert a64fx_hier.serving_level(4 * MIB, cores_sharing=12) == 2


class TestLineGranularity:
    def test_a64fx_line_is_256(self, a64fx_hier):
        assert a64fx_hier.line == 256

    def test_skylake_line_is_64(self, skl_hier):
        assert skl_hier.line == 64

    def test_random_utilization_gap(self, a64fx_hier, skl_hier):
        """A random 8-byte access wastes 31/32 of an A64FX line but only
        7/8 of a Skylake line — the paper's CG mechanism."""
        stream = MemoryStream("x", 64, 1e9, pattern="random")
        a_bw = a64fx_hier.effective_bw_gbs(stream, 1.8)
        s_bw = skl_hier.effective_bw_gbs(stream, 3.7)
        # Skylake wins per-core random-access useful bandwidth
        assert s_bw > a_bw

    def test_contig_full_utilization(self, a64fx_hier):
        stream = MemoryStream("x", 64, 1e9, pattern="contig")
        bw = a64fx_hier.effective_bw_gbs(stream, 1.8)
        assert bw == pytest.approx(a64fx_hier.stream_bw_core_gbs)

    def test_store_pays_write_allocate(self, a64fx_hier):
        load = MemoryStream("x", 64, 1e9, pattern="contig")
        store = MemoryStream("y", 64, 1e9, pattern="contig", is_store=True)
        assert a64fx_hier.effective_bw_gbs(store, 1.8) == pytest.approx(
            a64fx_hier.effective_bw_gbs(load, 1.8) / 2
        )

    def test_l1_resident_stream_uses_cache_bw(self, a64fx_hier):
        stream = MemoryStream("x", 64, 16 * KIB, pattern="contig")
        bw = a64fx_hier.effective_bw_gbs(stream, 1.8)
        assert bw == pytest.approx(128 * 1.8)  # L1 bytes/cycle x GHz

    def test_single_domain_placement_restricts_bandwidth(self, a64fx_hier):
        stream = MemoryStream("x", 64, 1e9, pattern="contig")
        full = a64fx_hier.effective_bw_gbs(
            stream, 1.8, active_cores_per_domain=12
        )
        pinched = a64fx_hier.effective_bw_gbs(
            stream, 1.8, active_cores_per_domain=12, placement_domains=1
        )
        assert pinched < full


class TestCacheSim:
    def test_construction_validation(self):
        with pytest.raises(ValueError):
            CacheSim(1000, 64, 4)

    def test_repeated_access_hits(self):
        sim = CacheSim(4 * KIB, 64, 4)
        sim.access(0)
        assert sim.access(0)
        assert sim.access(63)  # same line
        assert not sim.access(64)  # next line

    def test_lru_eviction(self):
        # 1 set x 2 ways: third distinct line evicts the least recent
        sim = CacheSim(128, 64, 2)
        assert sim.n_sets == 1
        sim.access(0)       # line A
        sim.access(64)      # line B
        sim.access(0)       # touch A (B becomes LRU)
        sim.access(128)     # line C evicts B
        assert sim.access(0)
        assert not sim.access(64)

    def test_sequential_trace_spatial_locality(self):
        sim = CacheSim(64 * KIB, 256, 4)
        addrs = np.arange(0, 8 * KIB, 8)
        rate = sim.access_trace(addrs)
        # 8-byte strides over 256-byte lines: 31/32 hits
        assert rate == pytest.approx(31 / 32, abs=0.01)

    def test_window_permutation_preserves_locality(self):
        """The paper's short-gather claim: permuting within 128-byte
        windows keeps accesses line-local; a global permutation on a
        too-small cache does not."""
        from repro.kernels.loops import make_permutation

        n = 1 << 14  # 16384 doubles = 128 KiB footprint, 2x a 64 KiB cache
        base = 0
        short = make_permutation(n, short=True, seed=3)
        full = make_permutation(n, short=False, seed=3)

        sim_short = CacheSim(64 * KIB, 256, 4)
        rate_short = sim_short.access_trace(base + 8 * short[: n // 4])
        sim_full = CacheSim(64 * KIB, 256, 4)
        rate_full = sim_full.access_trace(base + 8 * full[: n // 4])
        assert rate_short > rate_full + 0.2

    def test_reset_stats(self):
        sim = CacheSim(4 * KIB, 64, 4)
        sim.access(0)
        sim.reset_stats()
        assert sim.hits == 0 and sim.misses == 0

    @given(st.lists(st.integers(min_value=0, max_value=1 << 20),
                    min_size=1, max_size=200))
    @settings(max_examples=25, deadline=None)
    def test_hit_rate_bounded(self, addrs):
        sim = CacheSim(4 * KIB, 64, 4)
        rate = sim.access_trace(addrs)
        assert 0.0 <= rate <= 1.0
        assert sim.hits + sim.misses == len(addrs)
