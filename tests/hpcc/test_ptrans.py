"""Tests for the PTRANS component."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hpcc.ptrans import (
    ptrans_rate_model,
    transpose_blocked,
    transpose_naive,
)


class TestNumerics:
    def test_blocked_matches_numpy(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((130, 70))
        assert np.array_equal(transpose_blocked(a, block=32), a.T)

    def test_naive_matches_numpy(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((40, 25))
        assert np.array_equal(transpose_naive(a), a.T)

    @given(st.integers(min_value=1, max_value=60),
           st.integers(min_value=1, max_value=60),
           st.integers(min_value=1, max_value=48))
    @settings(max_examples=25, deadline=None)
    def test_blocked_property(self, n, m, block):
        rng = np.random.default_rng(n * 100 + m)
        a = rng.standard_normal((n, m))
        assert np.array_equal(transpose_blocked(a, block=block), a.T)

    def test_involution(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((33, 57))
        assert np.array_equal(
            transpose_blocked(transpose_blocked(a)), a
        )


class TestRateModel:
    def test_single_node_bandwidth_ratio(self):
        """The A64FX's HBM carries the single-node transpose ~5x faster
        than the Skylake node — the same bandwidth story as STREAM."""
        a64 = ptrans_rate_model("ookami")
        skl = ptrans_rate_model("skylake")
        assert a64 / skl > 4.0

    def test_multi_node_comm_dominated(self):
        """Across nodes the interconnect takes over: per-node rate drops
        far below the single-node memory-bound rate."""
        r1 = ptrans_rate_model("ookami", 1)
        r8 = ptrans_rate_model("ookami", 8)
        assert r8 < r1  # aggregate barely moves: comm-bound

    def test_fujitsu_stack_worse(self):
        good = ptrans_rate_model("ookami", 4, mpi_stack="openmpi")
        bad = ptrans_rate_model("ookami", 4, mpi_stack="fujitsu-mpi")
        assert bad < good / 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ptrans_rate_model("ookami", 0)
        with pytest.raises(ValueError):
            transpose_blocked(np.zeros((4, 4)), block=0)
