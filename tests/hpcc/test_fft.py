"""Tests for the FFT: radix-2 numerics + the Figure 9C/9D model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.expected import HPCC_RATIOS
from repro.hpcc.fft import (
    bit_reverse_permutation,
    fft_benchmark,
    fft_flops,
    fft_iterative,
    fft_rate_gflops,
    ifft_iterative,
)


class TestNumerics:
    @pytest.mark.parametrize("log2n", [0, 1, 2, 5, 10, 14])
    def test_matches_numpy(self, log2n):
        rng = np.random.default_rng(log2n)
        n = 1 << log2n
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        got = fft_iterative(x)
        ref = np.fft.fft(x)
        scale = np.max(np.abs(ref)) or 1.0
        assert np.max(np.abs(got - ref)) / scale < 1e-12

    def test_roundtrip(self):
        rng = np.random.default_rng(9)
        x = rng.standard_normal(2048) + 1j * rng.standard_normal(2048)
        assert np.allclose(ifft_iterative(fft_iterative(x)), x, atol=1e-12)

    def test_impulse(self):
        x = np.zeros(64, dtype=complex)
        x[0] = 1.0
        assert np.allclose(fft_iterative(x), 1.0)

    def test_parseval(self):
        rng = np.random.default_rng(10)
        x = rng.standard_normal(1024) + 1j * rng.standard_normal(1024)
        y = fft_iterative(x)
        assert np.sum(np.abs(y) ** 2) == pytest.approx(
            1024 * np.sum(np.abs(x) ** 2), rel=1e-12
        )

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            fft_iterative(np.zeros(100, dtype=complex))

    def test_bit_reverse_is_involution(self):
        for n in (2, 8, 64, 1024):
            p = bit_reverse_permutation(n)
            assert np.array_equal(p[p], np.arange(n))

    @given(st.integers(min_value=1, max_value=10))
    @settings(max_examples=15, deadline=None)
    def test_linearity(self, log2n):
        rng = np.random.default_rng(log2n + 100)
        n = 1 << log2n
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        y = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        lhs = fft_iterative(2.0 * x + 3.0 * y)
        rhs = 2.0 * fft_iterative(x) + 3.0 * fft_iterative(y)
        assert np.allclose(lhs, rhs, atol=1e-9)

    def test_benchmark_validates(self):
        r = fft_benchmark(log2n=12)
        assert r.max_error < 1e-12
        assert r.gflops > 0
        assert fft_flops(1024) == 5 * 1024 * 10


class TestFig9Model:
    def test_fujitsu_fftw_4p2x_stock(self):
        """'The Fujitsu version of FFTW ... 4.2 times faster than the
        non-optimized FFTW'"""
        fj = fft_rate_gflops("ookami", "fujitsu-fftw")
        stock = fft_rate_gflops("ookami", "fftw")
        assert fj / stock == pytest.approx(
            HPCC_RATIOS["fft_fujitsu_vs_stock"], rel=0.1
        )

    def test_armpl_fft_unoptimized(self):
        """'The ARMPL implementation seems to be unoptimized'"""
        arm = fft_rate_gflops("ookami", "armpl")
        stock = fft_rate_gflops("ookami", "fftw")
        assert arm < stock

    def test_a64fx_percent_of_peak_lowest(self):
        """'the performance percentage of the theoretical peak is also
        below the well-established systems'"""
        from repro.machine.systems import get_system

        frac = {}
        for sys_key, lib in (("ookami", "fujitsu-fftw"), ("skx", "mkl-skx"),
                             ("knl", "mkl-knl"), ("bridges2", "blis-zen2")):
            rate = fft_rate_gflops(sys_key, lib)
            frac[sys_key] = rate / get_system(sys_key).peak_gflops_node
        assert frac["ookami"] == min(frac.values())

    def test_multi_node_flat(self):
        """'the multi-node parallel performance ... is relatively flat
        across all tested nodes count'"""
        rates = [fft_rate_gflops("ookami", "fujitsu-fftw", nodes=n)
                 for n in (1, 2, 4, 8)]
        assert max(rates) / min(rates) < 2.5

    def test_library_without_fft_rejected(self):
        with pytest.raises(ValueError, match="no FFT"):
            fft_rate_gflops("ookami", "fujitsu-blas")
