"""Tests for the library catalog and interconnect models."""

import pytest

from repro.hpcc.interconnect import MPI_STACKS, MpiStack, get_mpi_stack
from repro.hpcc.libraries import LIBRARIES, dgemm_efficiency, get_library
from repro.machine.systems import get_system


class TestLibraryCatalog:
    def test_lookup(self):
        assert get_library("FUJITSU-BLAS").name == "Fujitsu BLAS"
        with pytest.raises(KeyError):
            get_library("essl")

    def test_sve_optimized_libraries_use_full_width(self):
        for key in ("fujitsu-blas", "armpl", "cray-libsci", "fujitsu-fftw"):
            assert LIBRARIES[key].simd_bits_used == 512

    def test_unoptimized_libraries_use_narrow_kernels(self):
        """'OpenBLAS and FFTW currently do not have SVE optimizations'"""
        assert LIBRARIES["openblas"].simd_bits_used < 512
        assert LIBRARIES["fftw"].simd_bits_used < 512

    def test_width_derating_mechanism(self):
        """The 14x gap derives from scalar-vs-512-bit kernels."""
        ook = get_system("ookami")
        eff_fj = dgemm_efficiency(get_library("fujitsu-blas"), ook)
        eff_ob = dgemm_efficiency(get_library("openblas"), ook)
        assert eff_ob < eff_fj / 8  # at least the 8-lane width factor

    def test_validation(self):
        from repro.hpcc.libraries import Library

        with pytest.raises(ValueError):
            Library(name="bad", arch="sve", simd_bits_used=512,
                    kernel_efficiency=1.5)
        with pytest.raises(ValueError):
            Library(name="bad", arch="sve", simd_bits_used=0,
                    kernel_efficiency=0.5)


class TestMpiStacks:
    def test_lookup(self):
        assert get_mpi_stack("fujitsu-mpi").name == "Fujitsu MPI"
        with pytest.raises(KeyError):
            get_mpi_stack("mvapich9")

    def test_fujitsu_mpi_worst_on_infiniband(self):
        """'We speculate the Fujitsu MPI may not be optimized for our
        interconnect.'"""
        fj = MPI_STACKS["fujitsu-mpi"]
        for key, stack in MPI_STACKS.items():
            if key != "fujitsu-mpi":
                assert fj.bw_efficiency < stack.bw_efficiency

    def test_ptp_time_monotone_in_bytes(self):
        net = get_system("ookami").interconnect
        stack = get_mpi_stack("openmpi")
        assert stack.ptp_time_s(net, 1e6) < stack.ptp_time_s(net, 1e8)

    def test_broadcast_log_scaling(self):
        net = get_system("ookami").interconnect
        stack = get_mpi_stack("openmpi")
        t2 = stack.broadcast_time_s(net, 1e6, 2)
        t8 = stack.broadcast_time_s(net, 1e6, 8)
        assert t8 == pytest.approx(3 * t2, rel=1e-6)
        assert stack.broadcast_time_s(net, 1e6, 1) == 0.0

    def test_alltoall_degradation(self):
        net = get_system("ookami").interconnect
        fj = get_mpi_stack("fujitsu-mpi")
        omp = get_mpi_stack("openmpi")
        # the same exchange takes disproportionately longer at 8 nodes
        # under the degrading stack
        fj_ratio = fj.alltoall_time_s(net, 1e9, 8) / fj.alltoall_time_s(net, 1e9, 2)
        omp_ratio = omp.alltoall_time_s(net, 1e9, 8) / omp.alltoall_time_s(net, 1e9, 2)
        assert fj_ratio > omp_ratio

    def test_overlap_reduces_comm(self):
        stack = get_mpi_stack("openmpi")
        assert stack.effective_comm_s(10.0) == pytest.approx(7.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MpiStack("bad", bw_efficiency=0.0, latency_factor=1.0)
        with pytest.raises(ValueError):
            MpiStack("bad", bw_efficiency=0.5, latency_factor=1.0,
                     overlap=1.0)
