"""Tests for DGEMM: blocked-multiply numerics + the Figure 8 model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.expected import FIG8_PERCENT_OF_PEAK, HPCC_RATIOS
from repro.hpcc.dgemm import (
    dgemm_blocked,
    dgemm_flops,
    dgemm_naive,
    dgemm_rate_gflops,
    hpcc_dgemm_matrix_size,
)


class TestNumerics:
    def test_blocked_matches_numpy(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((150, 130))
        b = rng.standard_normal((130, 170))
        got = dgemm_blocked(a, b, block=48)
        assert np.allclose(got, a @ b, atol=1e-11)

    def test_blocked_handles_ragged_tiles(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((65, 33))
        b = rng.standard_normal((33, 17))
        assert np.allclose(dgemm_blocked(a, b, block=16), a @ b, atol=1e-12)

    def test_naive_matches_numpy(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((9, 7))
        b = rng.standard_normal((7, 5))
        assert np.allclose(dgemm_naive(a, b), a @ b, atol=1e-13)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            dgemm_blocked(np.zeros((3, 4)), np.zeros((5, 3)))
        with pytest.raises(ValueError):
            dgemm_naive(np.zeros((3, 4)), np.zeros((5, 3)))

    @given(st.integers(min_value=1, max_value=40),
           st.integers(min_value=1, max_value=40),
           st.integers(min_value=1, max_value=40),
           st.integers(min_value=1, max_value=32))
    @settings(max_examples=25, deadline=None)
    def test_blocked_shape_property(self, n, k, m, block):
        rng = np.random.default_rng(n * 1000 + k * 10 + m)
        a = rng.standard_normal((n, k))
        b = rng.standard_normal((k, m))
        got = dgemm_blocked(a, b, block=block)
        assert got.shape == (n, m)
        assert np.allclose(got, a @ b, atol=1e-10)

    def test_flop_count(self):
        assert dgemm_flops(10) == 2000
        assert dgemm_flops(2, 3, 4) == 48

    def test_hpcc_matrix_size(self):
        # single node, 48 cores: 20000*sqrt(1/48)
        assert hpcc_dgemm_matrix_size(1, 48) == pytest.approx(2887, abs=1)
        assert hpcc_dgemm_matrix_size(4, 1) == 40000


class TestFig8Model:
    @pytest.mark.parametrize(
        ("system", "library"), sorted(FIG8_PERCENT_OF_PEAK)
    )
    def test_percent_of_peak_matches_paper(self, system, library):
        """Fig. 8's printed percentages: 71% (Fujitsu/A64FX), 97% (SKX),
        11% (KNL)."""
        point = dgemm_rate_gflops(system, library)
        expected = FIG8_PERCENT_OF_PEAK[(system, library)]
        assert point.percent_of_peak == pytest.approx(expected, abs=1.0)

    def test_fujitsu_14x_openblas(self):
        """'almost 14 times faster than non-optimized OpenBLAS'"""
        fj = dgemm_rate_gflops("ookami", "fujitsu-blas").gflops_per_core
        ob = dgemm_rate_gflops("ookami", "openblas").gflops_per_core
        assert fj / ob == pytest.approx(
            HPCC_RATIOS["dgemm_fujitsu_vs_openblas"], rel=0.15
        )

    def test_a64fx_core_1p6x_zen2(self):
        """'close to Intel SKX and 1.6 times faster than AMD Zen 2 cores'"""
        a64 = dgemm_rate_gflops("ookami", "fujitsu-blas").gflops_per_core
        zen = dgemm_rate_gflops("bridges2", "blis-zen2").gflops_per_core
        skx = dgemm_rate_gflops("skx", "mkl-skx").gflops_per_core
        assert a64 / zen == pytest.approx(1.6, rel=0.1)
        assert a64 == pytest.approx(skx, rel=0.15)

    def test_a64fx_between_knl_and_skx_percentwise(self):
        """'71% which is between that for Intel KNL (11%) and SKX (97%)'"""
        a64 = dgemm_rate_gflops("ookami", "fujitsu-blas").percent_of_peak
        knl = dgemm_rate_gflops("knl", "mkl-knl").percent_of_peak
        skx = dgemm_rate_gflops("skx", "mkl-skx").percent_of_peak
        assert knl < a64 < skx

    def test_armpl_libsci_beat_openblas(self):
        """'ARM Performance Library and Cray LibSci also show significant
        speed-up over the non-optimized OpenBLAS'"""
        ob = dgemm_rate_gflops("ookami", "openblas").gflops_per_core
        for lib in ("armpl", "cray-libsci"):
            assert dgemm_rate_gflops("ookami", lib).gflops_per_core > 5 * ob
