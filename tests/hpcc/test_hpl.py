"""Tests for HPL: blocked LU numerics + the Figure 9A/9B model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.expected import HPCC_RATIOS
from repro.hpcc.hpl import (
    hpl_benchmark,
    hpl_efficiency,
    hpl_rate_gflops,
    lu_factor_blocked,
    lu_solve,
)


class TestFactorization:
    def test_reconstruction(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((60, 60))
        lu, piv = lu_factor_blocked(a, block=16)
        l = np.tril(lu, -1) + np.eye(60)
        u = np.triu(lu)
        assert np.allclose(l @ u, a[piv], atol=1e-10)

    def test_matches_scipy(self):
        import scipy.linalg as sla

        rng = np.random.default_rng(1)
        a = rng.standard_normal((40, 40))
        b = rng.standard_normal(40)
        lu, piv = lu_factor_blocked(a, block=8)
        x = lu_solve(lu, piv, b)
        assert np.allclose(x, sla.solve(a, b), atol=1e-10)

    @given(st.integers(min_value=2, max_value=60),
           st.integers(min_value=1, max_value=32))
    @settings(max_examples=25, deadline=None)
    def test_solve_property(self, n, block):
        rng = np.random.default_rng(n * 37 + block)
        a = rng.standard_normal((n, n)) + np.eye(n) * 0.1
        b = rng.standard_normal(n)
        lu, piv = lu_factor_blocked(a, block=block)
        x = lu_solve(lu, piv, b)
        assert np.allclose(a @ x, b, atol=1e-8)

    def test_singular_detected(self):
        with pytest.raises(np.linalg.LinAlgError):
            lu_factor_blocked(np.zeros((8, 8)))

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            lu_factor_blocked(np.zeros((4, 5)))

    def test_pivoting_handles_zero_leading_entry(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        lu, piv = lu_factor_blocked(a)
        x = lu_solve(lu, piv, np.array([2.0, 3.0]))
        assert np.allclose(a @ x, [2.0, 3.0])


class TestBenchmark:
    def test_residual_passes_official_threshold(self):
        r = hpl_benchmark(n=192, block=32)
        assert r.passed
        assert r.scaled_residual < 1.0
        assert r.gflops > 0


class TestFig9Model:
    def test_fujitsu_10x_openblas(self):
        """'nearly ten times faster than non-optimized OpenBLAS'"""
        fj = hpl_rate_gflops("ookami", "fujitsu-blas")
        ob = hpl_rate_gflops("ookami", "openblas")
        assert fj / ob == pytest.approx(
            HPCC_RATIOS["hpl_fujitsu_vs_openblas"], rel=0.2
        )

    def test_hpl_below_dgemm_efficiency(self):
        """Panel overhead: HPL cannot beat its own DGEMM."""
        from repro.hpcc.libraries import dgemm_efficiency, get_library
        from repro.machine.systems import get_system

        lib = get_library("fujitsu-blas")
        sys_ = get_system("ookami")
        assert hpl_efficiency(lib, sys_) < dgemm_efficiency(lib, sys_)

    def test_node_parity_with_skx(self):
        """'Per-node performance is comparable to that of the Intel SKX
        system'"""
        a64 = hpl_rate_gflops("ookami", "fujitsu-blas")
        skx = hpl_rate_gflops("skx", "mkl-skx")
        assert a64 == pytest.approx(skx, rel=0.15)

    def test_zen2_node_1p6x(self):
        """'nearly 1.6 smaller than that of the AMD Zen-2 system'"""
        a64 = hpl_rate_gflops("ookami", "fujitsu-blas")
        zen = hpl_rate_gflops("bridges2", "blis-zen2")
        assert zen / a64 == pytest.approx(1.6, rel=0.15)

    def test_fujitsu_mpi_scales_poorly(self):
        """'HPL does not scale well in the case of Fujitsu BLAS and MPI
        ... ARMPL on the other hand shows better scalability and
        performance on two or more nodes'"""
        fj8 = hpl_rate_gflops("ookami", "fujitsu-blas", nodes=8)
        fj1 = hpl_rate_gflops("ookami", "fujitsu-blas", nodes=1)
        arm8 = hpl_rate_gflops("ookami", "armpl", nodes=8)
        arm1 = hpl_rate_gflops("ookami", "armpl", nodes=1)
        assert fj8 / fj1 < 0.55 * 8          # poor scaling
        assert arm8 / arm1 > 0.65 * 8        # good scaling
        assert arm8 > fj8                    # ARMPL overtakes at scale

    def test_armpl_overtakes_at_two_nodes(self):
        fj2 = hpl_rate_gflops("ookami", "fujitsu-blas", nodes=2)
        arm2 = hpl_rate_gflops("ookami", "armpl", nodes=2)
        assert arm2 > fj2

    def test_validation(self):
        with pytest.raises(ValueError):
            hpl_rate_gflops("ookami", "fujitsu-blas", nodes=0)
