"""Tests for the STREAM and RandomAccess HPCC components."""

import numpy as np
import pytest

from repro.hpcc.randomaccess import gups_model, run_randomaccess
from repro.hpcc.stream import STREAM_KERNELS, run_stream, stream_model_gbs


class TestStreamNumeric:
    def test_runs_and_verifies(self):
        r = run_stream(n=200_000, repeats=2)
        assert r.verified
        assert set(r.rates_gbs) == set(STREAM_KERNELS)
        assert all(v > 0 for v in r.rates_gbs.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            run_stream(n=0)


class TestStreamModel:
    def test_single_core_is_prefetch_limited(self):
        assert stream_model_gbs("ookami", 1) == pytest.approx(36.0)
        assert stream_model_gbs("skylake", 1) == pytest.approx(13.0)

    def test_node_saturation(self):
        """The paper's 1 TB/s HBM2 argument: the A64FX node sustains ~5x
        the Skylake node."""
        a64 = stream_model_gbs("ookami", 48)
        skl = stream_model_gbs("skylake", 36)
        assert a64 == pytest.approx(920.0)  # 4 x 230 GB/s CMGs
        assert a64 / skl > 4.0

    def test_saturation_point(self):
        """Per-CMG bandwidth saturates around 7 cores (230/36)."""
        r6 = stream_model_gbs("ookami", 6)
        r12 = stream_model_gbs("ookami", 12)
        assert r6 == pytest.approx(6 * 36.0)
        assert r12 == pytest.approx(230.0)

    def test_monotone_in_threads(self):
        rates = [stream_model_gbs("ookami", t) for t in (1, 6, 12, 24, 48)]
        assert all(b >= a for a, b in zip(rates, rates[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            stream_model_gbs("ookami", 0)
        with pytest.raises(ValueError):
            stream_model_gbs("ookami", 49)


class TestRandomAccessNumeric:
    def test_self_inverse_verification(self):
        r = run_randomaccess(log2_table=10, updates_factor=1)
        assert r.verified
        assert r.updates == 4 * r.table_words
        assert r.gups > 0

    def test_lfsr_stream_properties(self):
        from repro.hpcc.randomaccess import _lfsr_stream

        s = _lfsr_stream(4096)
        # no fixed point / short cycle at this scale
        assert len(np.unique(s)) == 4096
        # bit occupancy once past the fill-in transient; over a short
        # window of the 2^64-period m-sequence the density is skewed
        # (exact balance holds only over the full period), so the band
        # is generous — the real property is non-degeneracy
        tail = s[1024:]
        ones = int(np.sum((tail >> np.uint64(60)) & np.uint64(1)))
        assert 0.15 < ones / tail.size < 0.85
        # table indices cover the space: most buckets of a small table
        # get hit at least once
        idx = (tail & np.uint64(255)).astype(np.int64)
        assert len(np.unique(idx)) > 128  # > half the buckets


class TestGupsModel:
    def test_line_size_penalty(self):
        """The A64FX's 256-byte lines buy streaming bandwidth but hurt
        GUPS relative to raw bandwidth — the paper's line-utilization
        argument applied to RandomAccess."""
        a64 = gups_model("ookami")
        skl = gups_model("skylake")
        # raw node bandwidth is ~5x, but GUPS advantage is far smaller
        from repro.hpcc.stream import stream_model_gbs

        bw_ratio = stream_model_gbs("ookami", 48) / stream_model_gbs(
            "skylake", 36)
        gups_ratio = a64 / skl
        assert gups_ratio < bw_ratio / 2

    def test_scales_then_saturates(self):
        per_core = [gups_model("ookami", t) for t in (1, 12, 48)]
        assert per_core[0] < per_core[1] <= per_core[2]

    def test_validation(self):
        with pytest.raises(ValueError):
            gups_model("ookami", 0)
