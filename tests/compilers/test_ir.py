"""Tests for the loop IR (repro.compilers.ir)."""

import pytest

from repro.compilers.ir import (
    ArrayInfo,
    BinOp,
    Call,
    Cmp,
    Const,
    Load,
    Loop,
    LoopIdx,
    Reduce,
    Store,
    Var,
)
from repro.kernels.loops import build_loop


class TestNodes:
    def test_binop_validation(self):
        with pytest.raises(ValueError):
            BinOp("%", Const(1.0), Const(2.0))  # type: ignore[arg-type]

    def test_call_validation(self):
        with pytest.raises(ValueError):
            Call("tan", (Const(1.0),))
        with pytest.raises(ValueError):
            Call("exp", ())

    def test_cmp_validation(self):
        with pytest.raises(ValueError):
            Cmp("!=", Const(1.0), Const(2.0))  # type: ignore[arg-type]

    def test_gather_detection(self):
        assert Load("x", index=Load("idx")).is_gather
        assert not Load("x").is_gather

    def test_scatter_detection(self):
        assert Store("y", Const(1.0), index=Load("idx")).is_scatter
        assert not Store("y", Const(1.0)).is_scatter

    def test_arrayinfo_validation(self):
        with pytest.raises(ValueError):
            ArrayInfo("x", footprint=0)
        with pytest.raises(ValueError):
            ArrayInfo("x", footprint=8, pattern="zigzag")

    def test_reduce_validation(self):
        with pytest.raises(ValueError):
            Reduce("s", "*", Const(1.0))  # type: ignore[arg-type]


class TestLoopAnalysis:
    def test_referenced_arrays(self):
        loop = build_loop("gather")
        assert loop.referenced_arrays() == {"x", "y", "index"}

    def test_missing_arrayinfo_rejected(self):
        with pytest.raises(ValueError, match="ArrayInfo"):
            Loop("bad", 16, (Store("y", Load("x")),),
                 arrays={"y": ArrayInfo("y", 128)})

    def test_math_calls(self):
        assert build_loop("exp").math_calls() == ["exp"]
        assert build_loop("simple").math_calls() == []

    def test_predicate_detection(self):
        assert build_loop("predicate").has_predicated_store()
        assert not build_loop("simple").has_predicated_store()

    def test_gather_scatter_detection(self):
        assert build_loop("gather").has_gather()
        assert not build_loop("gather").has_scatter()
        assert build_loop("scatter").has_scatter()
        assert not build_loop("scatter").has_gather()

    def test_reduction_detection(self):
        loop = Loop(
            "sum", 16,
            (Reduce("s", "+", Load("x")),),
            arrays={"x": ArrayInfo("x", 128)},
        )
        assert loop.has_reduction()

    def test_flops_per_iter_simple(self):
        # y = 2*x + 3*x*x: three multiplies + one add = 4 BinOps
        assert build_loop("simple").flops_per_iter() == 4

    def test_flops_per_iter_counts_calls_once(self):
        assert build_loop("exp").flops_per_iter() == 1

    def test_length_validation(self):
        with pytest.raises(ValueError):
            Loop("bad", 0, (Store("y", Const(1.0)),),
                 arrays={"y": ArrayInfo("y", 8)})

    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            Loop("bad", 8, (), arrays={})

    def test_expressions_walk_includes_nested(self):
        loop = build_loop("pow")
        kinds = {type(e).__name__ for e in loop.expressions()}
        assert {"Call", "Load", "Var"} <= kinds
