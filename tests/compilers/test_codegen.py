"""Tests for IR -> instruction-stream lowering."""

import pytest

from repro.compilers.codegen import compile_loop
from repro.compilers.toolchains import ARM, CRAY, FUJITSU, GNU, INTEL
from repro.kernels.loops import build_loop
from repro.machine.isa import Op
from repro.machine.microarch import A64FX, SKYLAKE_6140


def _ops(compiled):
    return compiled.stream.counts()


class TestStructuralLowering:
    def test_simple_contains_fma_contraction(self):
        c = compile_loop(build_loop("simple"), FUJITSU, A64FX)
        ops = _ops(c)
        assert ops.get(Op.FMA, 0) >= 1       # 2*x + (3*x*x) fuses
        assert ops.get(Op.VLOAD, 0) >= 1
        assert ops.get(Op.VSTORE, 0) >= 1

    def test_cse_loads_x_once_per_copy(self):
        c = compile_loop(build_loop("simple"), FUJITSU, A64FX)
        # unrolled 4x: one load per copy despite three uses of x[i]
        assert _ops(c)[Op.VLOAD] == c.toolchain.small_loop_unroll

    def test_predicate_has_masked_store(self):
        c = compile_loop(build_loop("predicate"), FUJITSU, A64FX)
        assert _ops(c).get(Op.FCMP, 0) >= 1
        stores = [i for i in c.stream.body if i.op is Op.VSTORE]
        assert all(len(s.srcs) == 2 for s in stores)  # value + mask

    def test_sve_loop_tail_uses_whilelt(self):
        c = compile_loop(build_loop("simple"), FUJITSU, A64FX)
        assert _ops(c).get(Op.PWHILE, 0) == 1
        assert _ops(c).get(Op.BRANCH, 0) == 1

    def test_x86_loop_tail_uses_compare(self):
        c = compile_loop(build_loop("simple"), INTEL, SKYLAKE_6140)
        assert Op.PWHILE not in _ops(c)

    def test_elements_per_iter(self):
        c = compile_loop(build_loop("simple"), FUJITSU, A64FX)
        assert c.elements_per_iter == 8 * FUJITSU.small_loop_unroll
        assert c.n_iters == -(-c.loop.length // c.elements_per_iter)


class TestGatherScatterSplitting:
    def test_full_gather_one_uop_per_lane(self):
        c = compile_loop(build_loop("gather"), FUJITSU, A64FX)
        per_copy = _ops(c)[Op.GATHER_UOP] / FUJITSU.small_loop_unroll
        assert per_copy == A64FX.lanes_f64

    def test_short_gather_coalesces_pairs_on_a64fx(self):
        """'if loads of pairs of elements of a gather operation fit
        within an aligned 128-byte window ... they are not split'"""
        c = compile_loop(build_loop("short_gather"), FUJITSU, A64FX)
        per_copy = _ops(c)[Op.GATHER_UOP] / FUJITSU.small_loop_unroll
        assert per_copy == A64FX.lanes_f64 / 2

    def test_short_gather_not_coalesced_on_skylake(self):
        c = compile_loop(build_loop("short_gather"), INTEL, SKYLAKE_6140)
        per_copy = _ops(c)[Op.GATHER_UOP] / INTEL.small_loop_unroll
        assert per_copy == SKYLAKE_6140.lanes_f64

    def test_scatter_never_coalesces(self):
        """'No such acceleration is indicated for scatter operations'"""
        c = compile_loop(build_loop("short_scatter"), FUJITSU, A64FX)
        per_copy = _ops(c)[Op.SCATTER_UOP] / FUJITSU.small_loop_unroll
        assert per_copy == A64FX.lanes_f64


class TestInstructionSelection:
    def test_gnu_emits_blocking_fdiv(self):
        c = compile_loop(build_loop("recip"), GNU, A64FX)
        assert Op.FDIV in _ops(c)
        assert Op.FRECPE not in _ops(c)

    def test_fujitsu_emits_newton_recip(self):
        c = compile_loop(build_loop("recip"), FUJITSU, A64FX)
        assert Op.FRECPE in _ops(c)
        assert Op.FDIV not in _ops(c)

    def test_arm_sqrt_still_hardware(self):
        c = compile_loop(build_loop("sqrt"), ARM, A64FX)
        assert Op.FSQRT in _ops(c)

    def test_cray_sqrt_newton(self):
        c = compile_loop(build_loop("sqrt"), CRAY, A64FX)
        assert Op.FRSQRTE in _ops(c)
        assert Op.FSQRT not in _ops(c)

    def test_fujitsu_exp_uses_fexpa_instruction(self):
        c = compile_loop(build_loop("exp"), FUJITSU, A64FX)
        assert Op.FEXPA in _ops(c)

    def test_cray_exp_has_no_fexpa(self):
        c = compile_loop(build_loop("exp"), CRAY, A64FX)
        assert Op.FEXPA not in _ops(c)


class TestScalarFallback:
    def test_gnu_exp_loop_is_scalar(self):
        c = compile_loop(build_loop("exp"), GNU, A64FX)
        assert not c.report.vectorized
        ops = _ops(c)
        assert Op.CALL in ops
        assert Op.VLOAD not in ops
        assert c.elements_per_iter == GNU.unroll  # scalar lanes

    def test_gnu_exp_costs_about_32_cycles(self):
        c = compile_loop(build_loop("exp"), GNU, A64FX)
        assert c.cycles_per_element == pytest.approx(32.0, rel=0.15)


class TestMemoryStreams:
    def test_streams_cover_arrays(self):
        c = compile_loop(build_loop("gather"), FUJITSU, A64FX)
        names = {s.name for s in c.mem_streams}
        assert names == {"x", "y", "index"}

    def test_store_flag(self):
        c = compile_loop(build_loop("simple"), FUJITSU, A64FX)
        stores = {s.name: s.is_store for s in c.mem_streams}
        assert stores == {"x": False, "y": True}

    def test_pattern_propagates(self):
        c = compile_loop(build_loop("short_gather"), FUJITSU, A64FX)
        x = next(s for s in c.mem_streams if s.name == "x")
        assert x.pattern == "window128"


class TestDataflowValidity:
    @pytest.mark.parametrize("name", ("simple", "predicate", "gather",
                                      "scatter", "recip", "sqrt", "exp",
                                      "sin", "pow"))
    @pytest.mark.parametrize("tc", [FUJITSU, CRAY, ARM, GNU],
                             ids=lambda t: t.name)
    def test_all_streams_validate(self, name, tc):
        c = compile_loop(build_loop(name), tc, A64FX)
        c.stream.validate()  # raises on broken dataflow
        assert c.schedule.cycles_per_iter > 0
