"""Tests for the vectorization legality pass."""

import pytest

from repro.compilers.toolchains import ARM, CRAY, FUJITSU, GNU, INTEL
from repro.compilers.vectorizer import vectorize
from repro.kernels.loops import LOOP_NAMES, MATH_LOOP_NAMES, build_loop


class TestSectionIIIFindings:
    """'The Intel, Fujitsu, Cray and ARM compilers vectorized all loops,
    whereas the GNU compiler did not vectorize exp, sin, and pow.'"""

    @pytest.mark.parametrize("tc", [FUJITSU, CRAY, ARM, INTEL],
                             ids=lambda t: t.name)
    @pytest.mark.parametrize("name", LOOP_NAMES + MATH_LOOP_NAMES)
    def test_commercial_vectorize_all(self, tc, name):
        assert vectorize(build_loop(name), tc).vectorized

    @pytest.mark.parametrize("name", ("exp", "sin", "pow"))
    def test_gnu_refuses_math_loops(self, name):
        rep = vectorize(build_loop(name), GNU)
        assert not rep.vectorized
        assert name in rep.blocking_calls

    @pytest.mark.parametrize("name", LOOP_NAMES + ("recip", "sqrt"))
    def test_gnu_vectorizes_the_rest(self, name):
        assert vectorize(build_loop(name), GNU).vectorized


class TestRemarks:
    def test_predicate_remark(self):
        rep = vectorize(build_loop("predicate"), FUJITSU)
        assert any("predication" in r for r in rep.remarks)

    def test_gather_remark(self):
        rep = vectorize(build_loop("gather"), FUJITSU)
        assert any("gather" in r for r in rep.remarks)

    def test_scatter_remark(self):
        rep = vectorize(build_loop("scatter"), FUJITSU)
        assert any("scatter" in r for r in rep.remarks)

    def test_blocking_remark_mentions_library(self):
        rep = vectorize(build_loop("exp"), GNU)
        assert any("no vector math library" in r for r in rep.remarks)

    def test_str_rendering(self):
        rep = vectorize(build_loop("exp"), GNU)
        assert "NOT vectorized" in str(rep)
        rep2 = vectorize(build_loop("exp"), FUJITSU)
        assert "VECTORIZED" in str(rep2)
