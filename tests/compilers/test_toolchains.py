"""Tests for the toolchain catalog — the paper's documented behaviours."""

import pytest

from repro.compilers.toolchains import (
    ARM,
    CRAY,
    FUJITSU,
    GNU,
    INTEL,
    MathImpl,
    TOOLCHAINS,
    Toolchain,
    get_toolchain,
)
from repro.machine.numa import PagePlacement


class TestCatalog:
    def test_all_five_present(self):
        assert set(TOOLCHAINS) == {"fujitsu", "cray", "arm", "gnu", "intel"}

    def test_lookup(self):
        assert get_toolchain("FUJITSU") is FUJITSU
        with pytest.raises(KeyError):
            get_toolchain("pgi")

    def test_table1_versions(self):
        # Table I versions verbatim
        assert FUJITSU.version == "1.0.20"
        assert ARM.version == "21"
        assert CRAY.version == "10.0.2"
        assert GNU.version == "11.1.0"
        assert INTEL.version == "19.1.2.254"

    def test_table1_flags_non_empty(self):
        for tc in TOOLCHAINS.values():
            assert tc.flags
        assert "-Kfast" in FUJITSU.flags
        assert "-Ofast" in GNU.flags
        assert "-xHOST" in INTEL.flags


class TestVectorizationCapabilities:
    def test_gnu_cannot_vectorize_math(self):
        """'the GNU compiler did not vectorize exp, sin, and pow'"""
        for fn in ("exp", "sin", "pow"):
            assert not GNU.vectorizes_call(fn)

    def test_gnu_vectorizes_recip_sqrt(self):
        # open-coded from arithmetic, even though the selection is bad
        assert GNU.vectorizes_call("recip")
        assert GNU.vectorizes_call("sqrt")

    def test_commercial_toolchains_vectorize_everything(self):
        for tc in (FUJITSU, CRAY, ARM, INTEL):
            for fn in ("exp", "sin", "pow", "recip", "sqrt"):
                assert tc.vectorizes_call(fn), (tc.name, fn)

    def test_instruction_selection(self):
        """GNU emits FDIV/FSQRT; ARM v21 fixed recip but not sqrt;
        Fujitsu/Cray use Newton for both (Sec. III)."""
        assert GNU.div_strategy == "hardware"
        assert GNU.sqrt_strategy == "hardware"
        assert ARM.div_strategy == "newton"
        assert ARM.sqrt_strategy == "hardware"
        for tc in (FUJITSU, CRAY, INTEL):
            assert tc.div_strategy == "newton"
            assert tc.sqrt_strategy == "newton"

    def test_fujitsu_exp_uses_fexpa(self):
        assert FUJITSU.math_impl("exp").recipe == "exp_fexpa_estrin"

    def test_gnu_scalar_exp_costs_32_cycles(self):
        """'The serial GNU implementation of the exponential function on
        A64FX takes nearly 32 cycles per evaluation.'"""
        impl = GNU.math_impl("exp")
        assert impl.kind == "scalar_call"
        assert impl.scalar_cycles == pytest.approx(32.0)

    def test_math_impl_unknown_fn(self):
        with pytest.raises(KeyError):
            FUJITSU.math_impl("erf")


class TestOpenMPTraits:
    def test_fujitsu_defaults_to_cmg0(self):
        """'The Fujitsu compiler has a default policy of allocating all
        the data in CMG 0.'"""
        assert FUJITSU.openmp.default_placement is PagePlacement.SINGLE_DOMAIN

    def test_others_default_first_touch(self):
        for tc in (CRAY, ARM, GNU, INTEL):
            assert tc.openmp.default_placement is PagePlacement.FIRST_TOUCH

    def test_arm_runtime_has_highest_overheads(self):
        others = [t.openmp.fork_join_us for t in (FUJITSU, CRAY, GNU, INTEL)]
        assert ARM.openmp.fork_join_us > max(others)


class TestScalarLibm:
    def test_gnu_slowest_scalar_libm(self):
        for fn in ("exp", "sin", "pow", "log"):
            for tc in (FUJITSU, CRAY, ARM, INTEL):
                assert GNU.scalar_libm[fn] > tc.scalar_libm[fn], (fn, tc.name)


class TestValidation:
    def test_mathimpl_validation(self):
        with pytest.raises(ValueError):
            MathImpl(fn="exp", kind="vector", recipe="")
        with pytest.raises(ValueError):
            MathImpl(fn="exp", kind="scalar_call", scalar_cycles=0)

    def test_quality_factors_are_slowdowns(self):
        with pytest.raises(ValueError):
            Toolchain(
                name="x", version="1", flags="-O2", target="sve",
                math_impls={}, code_quality=0.5,
            )
