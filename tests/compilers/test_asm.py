"""Tests for the pseudo-assembly renderer."""

import pytest

from repro.compilers.asm import render_asm, render_compiled_loop
from repro.compilers.codegen import compile_loop
from repro.compilers.toolchains import FUJITSU, GNU, INTEL
from repro.kernels.loops import build_loop
from repro.machine.isa import Instruction, InstructionStream, Op
from repro.machine.microarch import A64FX, SKYLAKE_6140


class TestRenderAsm:
    def test_sve_flavour_on_a64fx(self):
        c = compile_loop(build_loop("exp"), FUJITSU, A64FX)
        asm = render_asm(c.stream, A64FX)
        assert "fexpa" in asm
        assert "whilelt" in asm
        assert "z0" in asm  # SVE register names

    def test_avx_flavour_on_skylake(self):
        c = compile_loop(build_loop("simple"), INTEL, SKYLAKE_6140)
        asm = render_asm(c.stream, SKYLAKE_6140)
        assert "vfmadd231pd" in asm
        assert "zmm" in asm
        assert "fexpa" not in asm

    def test_gnu_sqrt_shows_blocking_instruction(self):
        """The Sec. III diagnosis is visible in the listing."""
        gnu = render_asm(compile_loop(build_loop("sqrt"), GNU, A64FX).stream,
                         A64FX)
        fj = render_asm(
            compile_loop(build_loop("sqrt"), FUJITSU, A64FX).stream, A64FX
        )
        assert "fsqrt" in gnu
        assert "frsqrte" in fj and "fsqrt " not in fj

    def test_gnu_scalar_exp_shows_libm_call(self):
        asm = render_asm(compile_loop(build_loop("exp"), GNU, A64FX).stream,
                         A64FX)
        assert "bl" in asm  # the scalar libm call

    def test_constants_render_as_immediates(self):
        asm = render_asm(
            compile_loop(build_loop("simple"), FUJITSU, A64FX).stream, A64FX
        )
        assert "#2.0" in asm or "#3.0" in asm

    def test_fexpa_has_no_x86_encoding(self):
        stream = InstructionStream(
            body=[Instruction(Op.FEXPA, "y", ("x",))], elements_per_iter=8
        )
        with pytest.raises(ValueError, match="no encoding"):
            render_asm(stream, SKYLAKE_6140)

    def test_register_reuse_cycles(self):
        # more temps than registers must still render (cyclic rename)
        body = [Instruction(Op.FMA, f"t{i}") for i in range(80)]
        asm = render_asm(InstructionStream(body=body, elements_per_iter=8),
                         A64FX)
        assert asm.count("fmla") == 80


class TestRenderCompiledLoop:
    def test_contains_schedule_summary(self):
        c = compile_loop(build_loop("recip"), FUJITSU, A64FX)
        text = render_compiled_loop(c)
        assert "cycles/element" in text
        assert "vectorized: True" in text
        assert "fujitsu" in text

    def test_scalar_fallback_noted(self):
        c = compile_loop(build_loop("exp"), GNU, A64FX)
        text = render_compiled_loop(c)
        assert "vectorized: False" in text
