"""Property-based fuzzing of the full compile-and-schedule pipeline.

Hypothesis generates random (but well-formed) loop IR; every toolchain
must vectorize-or-refuse it deterministically, lower it to a valid
instruction stream, and schedule it to a positive, finite steady state —
with cross-cutting invariants (unrolling never makes code slower per
element, scalar code never beats vector code on vector-friendly bodies).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compilers.codegen import compile_loop
from repro.compilers.ir import (
    ArrayInfo,
    BinOp,
    Call,
    Cmp,
    Const,
    Load,
    Loop,
    Store,
)
from repro.compilers.toolchains import TOOLCHAINS
from repro.machine.microarch import A64FX, SKYLAKE_6140

# --- IR generators ----------------------------------------------------------

_binop = st.sampled_from(["+", "-", "*", "/"])
_mathfn = st.sampled_from(["recip", "sqrt", "exp", "sin", "log"])


def _expr(depth: int):
    if depth == 0:
        return st.one_of(
            st.just(Load("x")),
            st.builds(Const, st.floats(min_value=-8, max_value=8,
                                       allow_nan=False)),
        )
    sub = _expr(depth - 1)
    return st.one_of(
        st.just(Load("x")),
        st.builds(Const, st.floats(min_value=-8, max_value=8,
                                   allow_nan=False)),
        st.builds(BinOp, _binop, sub, sub),
        st.builds(lambda f, a: Call(f, (a,)), _mathfn, sub),
    )


@st.composite
def loops(draw):
    n_stmts = draw(st.integers(min_value=1, max_value=3))
    masked = draw(st.booleans())
    body = []
    for k in range(n_stmts):
        value = draw(_expr(2))
        mask = Cmp(">", Load("x"), Const(0.0)) if masked and k == 0 else None
        body.append(Store("y", value, mask=mask))
    arrays = {
        "x": ArrayInfo("x", footprint=8.0 * 2048),
        "y": ArrayInfo("y", footprint=8.0 * 2048),
    }
    return Loop("fuzz", 2048, tuple(body), arrays)


# --- properties ----------------------------------------------------------------


class TestPipelineFuzz:
    @given(loops())
    @settings(max_examples=60, deadline=None)
    def test_every_toolchain_compiles_and_schedules(self, loop):
        for name, tc in TOOLCHAINS.items():
            march = SKYLAKE_6140 if tc.target == "x86" else A64FX
            compiled = compile_loop(loop, tc, march)
            compiled.stream.validate()
            cpe = compiled.cycles_per_element
            assert 0.0 < cpe < 1e5, (name, cpe)
            assert compiled.n_iters >= 1

    @given(loops())
    @settings(max_examples=40, deadline=None)
    def test_vectorization_decision_is_structural(self, loop):
        """GNU refuses exactly the loops containing exp/sin/pow/log."""
        gnu = TOOLCHAINS["gnu"]
        compiled = compile_loop(loop, gnu, A64FX)
        needs_libm = bool(
            set(loop.math_calls()) & {"exp", "sin", "pow", "log"}
        )
        assert compiled.report.vectorized == (not needs_libm)

    @given(loops())
    @settings(max_examples=40, deadline=None)
    def test_fujitsu_never_slower_than_gnu_scalar_fallback(self, loop):
        """When GNU scalarizes, the vectorizing toolchain must win big."""
        fj = compile_loop(loop, TOOLCHAINS["fujitsu"], A64FX)
        gnu = compile_loop(loop, TOOLCHAINS["gnu"], A64FX)
        if fj.report.vectorized and not gnu.report.vectorized:
            assert fj.cycles_per_element < gnu.cycles_per_element

    @given(loops())
    @settings(max_examples=30, deadline=None)
    def test_deterministic(self, loop):
        a = compile_loop(loop, TOOLCHAINS["cray"], A64FX)
        b = compile_loop(loop, TOOLCHAINS["cray"], A64FX)
        assert a.cycles_per_element == b.cycles_per_element
        assert [i.op for i in a.stream.body] == [i.op for i in b.stream.body]

    @given(loops(), st.integers(min_value=1, max_value=96))
    @settings(max_examples=30, deadline=None)
    def test_smaller_window_never_faster(self, loop, small_window):
        """Shrinking the OoO window can only hurt (or tie)."""
        from repro.engine.scheduler import PipelineScheduler

        compiled = compile_loop(loop, TOOLCHAINS["fujitsu"], A64FX)
        full = PipelineScheduler(A64FX).steady_state(compiled.stream)
        small = PipelineScheduler(A64FX, window=small_window).steady_state(
            compiled.stream
        )
        assert small.cycles_per_iter >= full.cycles_per_iter * 0.999
