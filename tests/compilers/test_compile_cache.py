"""Content-addressed compile cache: keys, hit discipline, kill switch."""

import dataclasses

import pytest

from repro.compilers.cache import (
    CompileCache,
    cached_compile,
    compile_cache_enabled,
    compile_key,
    configure_compile_cache,
    get_compile_cache,
    loop_fingerprint,
)
from repro.compilers.codegen import compile_loop
from repro.compilers.toolchains import get_toolchain
from repro.kernels.catalog import build_kernel
from repro.machine.microarch import A64FX, SKYLAKE_6140


@pytest.fixture(autouse=True)
def fresh_cache():
    configure_compile_cache()
    yield
    configure_compile_cache()


def _compile(kernel="simple", tc_name="fujitsu"):
    tc = get_toolchain(tc_name)
    march = SKYLAKE_6140 if tc.target == "x86" else A64FX
    return cached_compile(build_kernel(kernel), tc, march)


class TestFingerprints:
    def test_rebuilt_loop_shares_a_fingerprint(self):
        assert loop_fingerprint(build_kernel("gather")) == \
            loop_fingerprint(build_kernel("gather"))

    def test_fingerprint_sees_content(self):
        a = build_kernel("gather")
        b = dataclasses.replace(a, length=a.length + 1)
        assert loop_fingerprint(a) != loop_fingerprint(b)

    def test_key_separates_toolchains_and_marches(self):
        loop = build_kernel("simple")
        fujitsu = compile_key(loop, get_toolchain("fujitsu"), A64FX)
        gnu = compile_key(loop, get_toolchain("gnu"), A64FX)
        intel = compile_key(loop, get_toolchain("intel"), SKYLAKE_6140)
        assert len({fujitsu, gnu, intel}) == 3


class TestHitDiscipline:
    def test_hit_is_equal_but_fresh(self):
        cold = _compile()
        hit = _compile()
        assert hit == cold
        assert hit is not cold
        # immutable components are shared, not re-lowered
        assert hit.stream is cold.stream
        assert hit.mem_streams is cold.mem_streams

    def test_hit_does_not_share_the_schedule_slot(self):
        """cycles_per_element on a hit must still consult the schedule
        cache (fresh ``cached_property`` slot), like a cold compile."""
        cold = _compile()
        _ = cold.schedule
        hit = _compile()
        assert "schedule" not in vars(hit)
        assert hit.schedule == cold.schedule

    def test_rebuilt_loop_hits(self):
        """Structurally identical loops share an entry even when the IR
        objects were rebuilt from scratch."""
        _compile()
        stats0 = get_compile_cache().stats()
        _compile()
        stats1 = get_compile_cache().stats()
        assert stats1["hits"] == stats0["hits"] + 1
        assert stats1["misses"] == stats0["misses"]
        assert stats1["entries"] == 1.0

    def test_matches_uncached_compile(self):
        tc = get_toolchain("gnu")
        assert _compile("sqrt", "gnu") == \
            compile_loop(build_kernel("sqrt"), tc, A64FX)


class TestCacheObject:
    def test_capacity_evicts_lru(self):
        cache = CompileCache(capacity=2)
        for i, kernel in enumerate(("simple", "gather", "sqrt")):
            tc = get_toolchain("fujitsu")
            loop = build_kernel(kernel)
            cache.store(compile_key(loop, tc, A64FX),
                        compile_loop(loop, tc, A64FX))
        assert len(cache) == 2
        oldest = compile_key(build_kernel("simple"),
                             get_toolchain("fujitsu"), A64FX)
        assert cache.lookup(oldest) is None

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            CompileCache(capacity=0)

    def test_clear_resets_stats(self):
        _compile()
        _compile()
        dropped = get_compile_cache().clear()
        assert dropped == 1
        stats = get_compile_cache().stats()
        assert stats["hits"] == stats["misses"] == stats["entries"] == 0.0

    def test_configure_replaces_the_process_cache(self):
        old = get_compile_cache()
        new = configure_compile_cache(capacity=8)
        assert new is get_compile_cache()
        assert new is not old
        assert new.capacity == 8


class TestKillSwitch:
    def test_off_bypasses_the_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILE_CACHE", "off")
        assert not compile_cache_enabled()
        before = get_compile_cache().stats()
        a = _compile()
        b = _compile()
        assert a == b
        assert a.stream is not b.stream  # genuinely re-lowered
        assert get_compile_cache().stats() == before

    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_COMPILE_CACHE", raising=False)
        assert compile_cache_enabled()
