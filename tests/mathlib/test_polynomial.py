"""Tests for Horner/Estrin evaluation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mathlib.polynomial import estrin, estrin_depth, horner, horner_depth

coeff_lists = st.lists(
    st.floats(min_value=-10, max_value=10, allow_nan=False),
    min_size=1, max_size=16,
)


class TestAgainstNumpy:
    @pytest.mark.parametrize("degree", [0, 1, 2, 3, 5, 7, 13])
    def test_horner_matches_polyval(self, degree):
        rng = np.random.default_rng(degree)
        c = rng.standard_normal(degree + 1)
        x = rng.uniform(-1, 1, 100)
        ref = np.polynomial.polynomial.polyval(x, c)
        assert np.allclose(horner(c, x), ref, rtol=1e-13)

    @pytest.mark.parametrize("degree", [0, 1, 2, 3, 5, 7, 13])
    def test_estrin_matches_polyval(self, degree):
        rng = np.random.default_rng(degree)
        c = rng.standard_normal(degree + 1)
        x = rng.uniform(-1, 1, 100)
        ref = np.polynomial.polynomial.polyval(x, c)
        assert np.allclose(estrin(c, x), ref, rtol=1e-12)

    @given(coeff_lists, st.floats(min_value=-2, max_value=2,
                                  allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_schemes_agree(self, coeffs, xval):
        x = np.array([xval])
        h = horner(coeffs, x)[0]
        e = estrin(coeffs, x)[0]
        scale = max(1.0, abs(h))
        assert abs(h - e) <= 1e-10 * scale


class TestDepths:
    def test_horner_depth_is_degree(self):
        assert horner_depth(13) == 13
        assert horner_depth(0) == 0

    def test_estrin_shallower_for_high_degree(self):
        # Section IV: Estrin "reveals more parallelism"
        for d in (5, 7, 13):
            assert estrin_depth(d) < horner_depth(d)

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            horner_depth(-1)
        with pytest.raises(ValueError):
            estrin_depth(-1)


class TestValidation:
    def test_empty_coeffs(self):
        with pytest.raises(ValueError):
            horner([], np.array([1.0]))
        with pytest.raises(ValueError):
            estrin([], np.array([1.0]))
