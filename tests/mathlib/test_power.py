"""Tests for pow = exp(y * log x)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mathlib.power import pow_explog
from repro.mathlib.ulp import max_ulp_error


@pytest.fixture(scope="module")
def bases():
    rng = np.random.default_rng(7)
    return rng.uniform(0.1, 10.0, 100_000)


class TestAccuracy:
    def test_accurate_mode_few_ulp(self, bases):
        got = pow_explog(bases, 1.5, accurate=True)
        assert max_ulp_error(got, np.power(bases, 1.5)) <= 8.0

    def test_fast_mode_amplified_error(self, bases):
        """The error-amplification story: the fast composition is fine in
        relative terms but visibly worse than the double-double path."""
        fast = max_ulp_error(pow_explog(bases, 1.5, accurate=False),
                             np.power(bases, 1.5))
        acc = max_ulp_error(pow_explog(bases, 1.5, accurate=True),
                            np.power(bases, 1.5))
        assert acc <= fast
        assert fast <= 512.0  # still a usable fast-math pow

    def test_large_exponents(self):
        x = np.linspace(1.1, 2.0, 10_001)
        got = pow_explog(x, 100.0)
        assert np.allclose(got, np.power(x, 100.0), rtol=1e-12)

    def test_negative_exponent(self, bases):
        got = pow_explog(bases[:1000], -2.5)
        assert np.allclose(got, np.power(bases[:1000], -2.5), rtol=1e-13)

    def test_vector_exponent(self):
        rng = np.random.default_rng(8)
        x = rng.uniform(0.5, 2.0, 1000)
        y = rng.uniform(-3.0, 3.0, 1000)
        assert np.allclose(pow_explog(x, y), np.power(x, y), rtol=1e-13)


class TestSpecialCases:
    def test_one_to_anything(self):
        assert pow_explog(np.array([1.0]), 1e300)[0] == 1.0

    def test_anything_to_zero(self):
        assert pow_explog(np.array([5.0]), 0.0)[0] == 1.0
        assert pow_explog(np.array([0.0]), 0.0)[0] == 1.0

    def test_zero_base(self):
        assert pow_explog(np.array([0.0]), 2.0)[0] == 0.0
        assert np.isinf(pow_explog(np.array([0.0]), -2.0)[0])

    def test_negative_base_is_nan(self):
        assert np.isnan(pow_explog(np.array([-2.0]), 1.5)[0])

    def test_nan_propagates(self):
        assert np.isnan(pow_explog(np.array([np.nan]), 2.0)[0])


class TestProperties:
    @given(st.floats(min_value=0.1, max_value=10.0),
           st.floats(min_value=-5.0, max_value=5.0))
    @settings(max_examples=200, deadline=None)
    def test_pointwise(self, x, y):
        got = pow_explog(np.array([x]), y)[0]
        assert got == pytest.approx(x**y, rel=1e-12)

    @given(st.floats(min_value=0.5, max_value=2.0),
           st.floats(min_value=-3.0, max_value=3.0),
           st.floats(min_value=-3.0, max_value=3.0))
    @settings(max_examples=100, deadline=None)
    def test_exponent_addition(self, x, a, b):
        lhs = pow_explog(np.array([x]), a + b)[0]
        rhs = pow_explog(np.array([x]), a)[0] * pow_explog(np.array([x]), b)[0]
        assert lhs == pytest.approx(rhs, rel=1e-12)
