"""Tests for the quadrant-reduced sine/cosine kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mathlib.sincos import MAX_ABS_ARG, cos_poly, sin_poly
from repro.mathlib.ulp import max_ulp_error


@pytest.fixture(scope="module")
def xs():
    rng = np.random.default_rng(6)
    return np.concatenate([
        rng.uniform(-np.pi, np.pi, 100_000),
        rng.uniform(-1e4, 1e4, 100_000),
    ])


class TestAccuracy:
    def test_sin_few_ulp(self, xs):
        # relative ULP near zeros of sin is inherently hard; measure on
        # the kernel's absolute error scaled to the function's magnitude
        got = sin_poly(xs)
        ref = np.sin(xs)
        assert np.max(np.abs(got - ref)) < 4e-16

    def test_cos_few_ulp(self, xs):
        got = cos_poly(xs)
        ref = np.cos(xs)
        assert np.max(np.abs(got - ref)) < 4e-16

    def test_small_args_ulp_tight(self):
        x = np.linspace(0.01, np.pi / 4, 100_001)
        assert max_ulp_error(sin_poly(x), np.sin(x)) <= 2.0

    def test_quadrants(self):
        x = np.array([0.0, np.pi / 2, np.pi, 3 * np.pi / 2, 2 * np.pi])
        assert np.allclose(sin_poly(x), [0, 1, 0, -1, 0], atol=1e-15)
        assert np.allclose(cos_poly(x), [1, 0, -1, 0, 1], atol=1e-15)

    def test_odd_even_symmetry(self, xs):
        assert np.allclose(sin_poly(-xs), -sin_poly(xs), atol=1e-16)
        assert np.allclose(cos_poly(-xs), cos_poly(xs), atol=1e-16)


class TestDomain:
    def test_large_args_rejected(self):
        with pytest.raises(ValueError, match="Payne-Hanek"):
            sin_poly(np.array([1e9]))
        with pytest.raises(ValueError):
            cos_poly(np.array([MAX_ABS_ARG * 2]))

    def test_nan_inf(self):
        assert np.isnan(sin_poly(np.array([np.nan]))[0])
        assert np.isnan(sin_poly(np.array([np.inf]))[0])


class TestProperties:
    @given(st.floats(min_value=-1e4, max_value=1e4, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_pointwise(self, v):
        assert sin_poly(np.array([v]))[0] == pytest.approx(
            float(np.sin(v)), abs=2e-16
        )

    @given(st.floats(min_value=-1e3, max_value=1e3, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_pythagorean(self, v):
        s = sin_poly(np.array([v]))[0]
        c = cos_poly(np.array([v]))[0]
        assert s * s + c * c == pytest.approx(1.0, abs=1e-14)

    @given(st.floats(min_value=-0.7, max_value=0.7, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_double_angle(self, v):
        s2 = sin_poly(np.array([2 * v]))[0]
        s, c = sin_poly(np.array([v]))[0], cos_poly(np.array([v]))[0]
        assert s2 == pytest.approx(2 * s * c, abs=1e-14)
