"""Tests for estimate + Newton-Raphson reciprocal and rsqrt.

These verify the quadratic-convergence story behind the paper's Section
III finding: the Newton lowering the Fujitsu/Cray compilers use really
does reach double precision in a few pipelined steps, making the
blocking FSQRT/FDIV selection (GNU/ARM) a pure loss.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mathlib.newton import (
    ESTIMATE_BITS,
    recip_estimate,
    recip_newton,
    rsqrt_estimate,
    rsqrt_newton,
    sqrt_newton,
)
from repro.mathlib.ulp import max_ulp_error

positive = st.floats(min_value=1e-300, max_value=1e300, allow_nan=False)


@pytest.fixture(scope="module")
def xs():
    rng = np.random.default_rng(3)
    return np.concatenate([
        rng.uniform(1e-3, 1e3, 50_000),
        10.0 ** rng.uniform(-300, 300, 50_000),
    ])


class TestEstimates:
    def test_recip_estimate_has_8_bits(self, xs):
        est = recip_estimate(xs)
        rel = np.abs(est * xs - 1.0)
        assert np.max(rel) < 2.0 ** (-(ESTIMATE_BITS - 1))

    def test_rsqrt_estimate_has_8_bits(self, xs):
        est = rsqrt_estimate(xs)
        rel = np.abs(est * est * xs - 1.0)
        assert np.max(rel) < 2.0 ** (-(ESTIMATE_BITS - 2))

    def test_recip_estimate_sign(self):
        assert recip_estimate(np.array([-2.0]))[0] < 0

    def test_estimate_specials(self):
        assert np.isinf(recip_estimate(np.array([0.0]))[0])
        assert recip_estimate(np.array([np.inf]))[0] == 0.0
        assert np.isnan(rsqrt_estimate(np.array([-1.0]))[0])
        assert np.isinf(rsqrt_estimate(np.array([0.0]))[0])


class TestQuadraticConvergence:
    def test_error_squares_each_step(self, xs):
        """8 -> 16 -> 32 -> ~52 bits: the documented schedule."""
        prev_bits = ESTIMATE_BITS
        for steps in (1, 2, 3):
            y = recip_newton(xs, steps=steps)
            rel = np.max(np.abs(y * xs - 1.0))
            bits = -np.log2(max(rel, 1e-17))
            assert bits > min(1.8 * prev_bits, 49), (steps, bits)
            prev_bits = bits

    def test_three_steps_reach_double(self, xs):
        y = recip_newton(xs, steps=3)
        assert max_ulp_error(y, 1.0 / xs) <= 2.0

    def test_rsqrt_three_steps(self, xs):
        y = rsqrt_newton(xs, steps=3)
        assert max_ulp_error(y, 1.0 / np.sqrt(xs)) <= 3.0

    def test_sqrt_three_steps(self, xs):
        y = sqrt_newton(xs, steps=3)
        assert max_ulp_error(y, np.sqrt(xs)) <= 3.0

    def test_two_steps_fast_math_class(self, xs):
        """The compilers' -Ofast lowering: ~1e-9 relative, plenty for
        fast-math semantics but short of correctly rounded."""
        y = recip_newton(xs, steps=2)
        rel = np.max(np.abs(y * xs - 1.0))
        assert 1e-12 < rel < 1e-8


class TestSpecials:
    def test_sqrt_zero(self):
        assert sqrt_newton(np.array([0.0]))[0] == 0.0

    def test_sqrt_inf(self):
        assert np.isinf(sqrt_newton(np.array([np.inf]))[0])

    def test_recip_negative(self, xs):
        y = recip_newton(-xs, steps=3)
        assert max_ulp_error(y, -1.0 / xs) <= 2.0

    def test_steps_validation(self):
        with pytest.raises(ValueError):
            recip_newton(np.array([1.0]), steps=-1)
        with pytest.raises(ValueError):
            rsqrt_newton(np.array([1.0]), steps=-1)


class TestProperties:
    @given(positive)
    @settings(max_examples=150, deadline=None)
    def test_recip_pointwise(self, v):
        y = recip_newton(np.array([v]), steps=3)[0]
        assert y == pytest.approx(1.0 / v, rel=1e-15)

    @given(st.floats(min_value=1e-150, max_value=1e150, allow_nan=False))
    @settings(max_examples=150, deadline=None)
    def test_sqrt_pointwise(self, v):
        y = sqrt_newton(np.array([v]), steps=3)[0]
        assert y == pytest.approx(float(np.sqrt(v)), rel=1e-15)

    @given(positive)
    @settings(max_examples=100, deadline=None)
    def test_rsqrt_consistent_with_recip_of_sqrt(self, v):
        a = rsqrt_newton(np.array([v]), steps=3)[0]
        b = 1.0 / sqrt_newton(np.array([v]), steps=3)[0]
        assert a == pytest.approx(b, rel=1e-13)
