"""Tests for the atanh-series natural logarithm."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mathlib.log import log_dd, log_poly
from repro.mathlib.ulp import max_ulp_error


@pytest.fixture(scope="module")
def xs():
    rng = np.random.default_rng(5)
    return np.concatenate([
        rng.uniform(0.1, 10.0, 100_000),
        10.0 ** rng.uniform(-300, 300, 100_000),
        1.0 + rng.uniform(-1e-8, 1e-8, 10_000),  # near-1 cancellation zone
    ])


class TestAccuracy:
    def test_few_ulp_overall(self, xs):
        assert max_ulp_error(log_poly(xs), np.log(xs)) <= 4.0

    def test_near_one_no_cancellation(self):
        x = 1.0 + np.linspace(-1e-6, 1e-6, 100_001)
        assert max_ulp_error(log_poly(x), np.log(x)) <= 3.0

    def test_exact_at_one(self):
        assert log_poly(np.array([1.0]))[0] == 0.0

    def test_powers_of_two(self):
        x = 2.0 ** np.arange(-100, 101, dtype=np.float64)
        assert max_ulp_error(log_poly(x), np.log(x)) <= 2.0


class TestEdges:
    def test_zero(self):
        assert log_poly(np.array([0.0]))[0] == -np.inf

    def test_negative(self):
        assert np.isnan(log_poly(np.array([-1.0]))[0])

    def test_inf(self):
        assert log_poly(np.array([np.inf]))[0] == np.inf

    def test_nan(self):
        assert np.isnan(log_poly(np.array([np.nan]))[0])


class TestDoubleDouble:
    def test_tail_is_small_correction(self, xs):
        pos = xs[xs > 0][:1000]
        hi, lo = log_dd(pos)
        assert np.allclose(hi, np.log(pos), rtol=1e-15)
        nonzero = hi != 0
        assert np.all(np.abs(lo[nonzero]) <= np.abs(hi[nonzero]) * 1e-15)

    def test_requires_positive(self):
        with pytest.raises(ValueError):
            log_dd(np.array([-1.0]))

    def test_head_plus_tail_beats_head(self):
        x = np.array([3.0, 7.0, 1.5])
        hi, lo = log_dd(x)
        ld = np.longdouble
        better = np.abs(hi.astype(ld) + lo.astype(ld) - np.log(x.astype(ld)))
        plain = np.abs(hi.astype(ld) - np.log(x.astype(ld)))
        assert np.all(better <= plain)


class TestProperties:
    @given(st.floats(min_value=1e-300, max_value=1e300, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_pointwise(self, v):
        assert log_poly(np.array([v]))[0] == pytest.approx(
            float(np.log(v)), rel=1e-14, abs=1e-14
        )

    @given(st.floats(min_value=0.01, max_value=100.0),
           st.floats(min_value=0.01, max_value=100.0))
    @settings(max_examples=100, deadline=None)
    def test_product_rule(self, a, b):
        lhs = log_poly(np.array([a * b]))[0]
        rhs = log_poly(np.array([a]))[0] + log_poly(np.array([b]))[0]
        assert lhs == pytest.approx(rhs, abs=1e-12)
