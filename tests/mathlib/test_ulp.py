"""Tests for ULP measurement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mathlib.ulp import (
    float_to_ordinal,
    max_ulp_error,
    mean_ulp_error,
    ulp_diff,
)

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e300, max_value=1e300
)


class TestOrdinal:
    def test_adjacent_values_differ_by_one(self):
        for v in (1.0, -1.0, 1e-300, 1e300, 0.5, 2.0):
            nxt = np.nextafter(v, np.inf)
            assert ulp_diff(np.array([v]), np.array([nxt]))[0] == 1

    def test_zero_crossing(self):
        # -0.0 and +0.0 are the same ordinal; the smallest subnormals
        # bracket them at distance 1 each
        tiny = np.nextafter(0.0, 1.0)
        assert ulp_diff(np.array([0.0]), np.array([tiny]))[0] == 1
        assert ulp_diff(np.array([-tiny]), np.array([tiny]))[0] == 2

    def test_monotone(self):
        xs = np.array([-1e10, -1.0, -1e-10, 0.0, 1e-10, 1.0, 1e10])
        ords = float_to_ordinal(xs).astype(np.float64)
        assert np.all(np.diff(ords) > 0)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            float_to_ordinal(np.array([np.nan]))

    @given(st.lists(finite_floats, min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_ordinal_order_matches_float_order(self, vals):
        xs = np.array(sorted(vals))
        ords = float_to_ordinal(xs).astype(np.float64)
        assert np.all(np.diff(ords) >= 0)


class TestErrorMetrics:
    def test_exact_is_zero(self):
        x = np.array([1.0, 2.0, -3.0])
        assert max_ulp_error(x, x) == 0.0
        assert mean_ulp_error(x, x) == 0.0

    def test_max_picks_worst(self):
        exact = np.array([1.0, 1.0])
        approx = np.array([1.0, np.nextafter(np.nextafter(1.0, 2), 2)])
        assert max_ulp_error(approx, exact) == 2.0

    def test_inf_must_match(self):
        assert max_ulp_error(np.array([np.inf]), np.array([np.inf])) == 0.0
        assert max_ulp_error(np.array([np.inf]), np.array([1.0])) == np.inf
        assert max_ulp_error(np.array([1.0]), np.array([np.inf])) == np.inf

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            max_ulp_error(np.zeros(2), np.zeros(3))

    @given(st.lists(finite_floats, min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_symmetry(self, vals):
        a = np.array(vals)
        b = a * (1.0 + 1e-15)
        assert max_ulp_error(a, b) == max_ulp_error(b, a)
