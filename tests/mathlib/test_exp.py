"""Tests for the Section IV exponential implementations.

The accuracy claims under test come straight from the paper:
* the plain 13-term algorithm: "An error of between 1 and 4 ulps ... is
  common in vectorized libraries";
* the FEXPA kernel: "about 6 ulp precision";
* "better is possible ... by correcting the last FMA operation".
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mathlib.exp import (
    EXP_OVERFLOW,
    EXP_UNDERFLOW,
    FEXPA_TERMS,
    FEXPA_UNDERFLOW,
    PLAIN_TERMS,
    exp_fexpa,
    exp_plain,
    fexpa_emulate,
)
from repro.mathlib.ulp import max_ulp_error


@pytest.fixture(scope="module")
def dense_x():
    rng = np.random.default_rng(42)
    return rng.uniform(-700.0, 700.0, 500_000)


class TestFexpaInstruction:
    def test_exact_powers(self):
        # i = 0: 2**m exactly
        for m in (-10, 0, 1, 100):
            bits = np.array([(m + 1023) << 6])
            assert fexpa_emulate(bits)[0] == 2.0**m

    def test_table_values(self):
        # m = 0, i = 32: 2**0.5
        bits = np.array([(1023 << 6) | 32])
        assert fexpa_emulate(bits)[0] == pytest.approx(np.sqrt(2.0), rel=1e-15)

    def test_17_bit_input_enforced(self):
        with pytest.raises(ValueError):
            fexpa_emulate(np.array([1 << 17]))
        with pytest.raises(ValueError):
            fexpa_emulate(np.array([-1]))

    def test_monotone_in_input(self):
        bits = (1023 << 6) + np.arange(-64, 65)
        vals = fexpa_emulate(bits)
        assert np.all(np.diff(vals) > 0)


class TestPlainExp:
    def test_accuracy_class(self, dense_x):
        err = max_ulp_error(exp_plain(dense_x), np.exp(dense_x))
        assert err <= 4.0  # the paper's "1 to 4 ulps" vectorized class

    def test_small_arguments_exact_class(self):
        x = np.linspace(-0.5, 0.5, 10001)
        assert max_ulp_error(exp_plain(x), np.exp(x)) <= 2.0

    def test_fewer_terms_lose_accuracy(self):
        x = np.linspace(-0.3, 0.3, 20001)
        full = max_ulp_error(exp_plain(x, terms=13), np.exp(x))
        short = max_ulp_error(exp_plain(x, terms=6), np.exp(x))
        assert short > 4 * max(full, 1.0)

    def test_term_validation(self):
        with pytest.raises(ValueError):
            exp_plain(np.array([1.0]), terms=2)

    def test_scheme_validation(self):
        with pytest.raises(ValueError):
            exp_plain(np.array([1.0]), scheme="chebyshev")  # type: ignore[arg-type]


class TestFexpaExp:
    def test_paper_accuracy_claim(self, dense_x):
        """'Limited testing suggests that it yields about 6 ulp precision'"""
        err = max_ulp_error(exp_fexpa(dense_x), np.exp(dense_x))
        assert err <= 6.0

    def test_refined_improves(self, dense_x):
        """'better is possible ... by correcting the last FMA operation'"""
        base = max_ulp_error(exp_fexpa(dense_x), np.exp(dense_x))
        refined = max_ulp_error(exp_fexpa(dense_x, refined=True),
                                np.exp(dense_x))
        assert refined < base
        assert refined <= 2.0

    def test_horner_estrin_agree_closely(self, dense_x):
        h = exp_fexpa(dense_x, scheme="horner")
        e = exp_fexpa(dense_x, scheme="estrin")
        assert max_ulp_error(h, e) <= 4.0

    def test_uses_5_terms(self):
        assert FEXPA_TERMS == 5
        assert PLAIN_TERMS == 13


class TestEdges:
    def test_overflow_to_inf(self):
        x = np.array([EXP_OVERFLOW + 1.0, 1000.0])
        assert np.all(np.isinf(exp_plain(x)))
        assert np.all(np.isinf(exp_fexpa(x)))

    def test_underflow_to_zero(self):
        x = np.array([EXP_UNDERFLOW - 1.0, -1000.0])
        assert np.all(exp_plain(x) == 0.0)
        assert np.all(exp_fexpa(x) == 0.0)

    def test_fexpa_flushes_subnormal_region(self):
        # documented deviation: would-be subnormal results flush to zero
        x = np.array([FEXPA_UNDERFLOW - 1.0])
        assert exp_fexpa(x)[0] == 0.0
        assert exp_plain(x)[0] > 0.0  # the plain path keeps subnormals

    def test_nan_propagates(self):
        assert np.isnan(exp_plain(np.array([np.nan]))[0])
        assert np.isnan(exp_fexpa(np.array([np.nan]))[0])

    def test_zero_maps_to_one(self):
        assert exp_plain(np.array([0.0]))[0] == 1.0
        assert exp_fexpa(np.array([0.0]))[0] == 1.0


class TestProperties:
    @given(st.floats(min_value=-600, max_value=600, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_pointwise_close_to_libm(self, xv):
        x = np.array([xv])
        got = exp_fexpa(x)[0]
        ref = float(np.exp(xv))
        assert got == pytest.approx(ref, rel=2e-15)

    @given(st.floats(min_value=-300, max_value=300, allow_nan=False),
           st.floats(min_value=-300, max_value=300, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_monotonicity_pairs(self, a, b):
        lo, hi = sorted((a, b))
        y = exp_fexpa(np.array([lo, hi]))
        assert y[0] <= y[1] * (1 + 1e-14)

    @given(st.floats(min_value=-340, max_value=340, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_functional_equation(self, xv):
        # exp(x) * exp(-x) ~= 1
        y = exp_fexpa(np.array([xv, -xv]))
        assert y[0] * y[1] == pytest.approx(1.0, rel=1e-13)
