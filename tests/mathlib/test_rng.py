"""Tests for the counter-based RNG."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mathlib.rng import VectorRng, splitmix64


class TestSplitmix:
    def test_deterministic(self):
        c = np.arange(100, dtype=np.uint64)
        assert np.array_equal(splitmix64(c), splitmix64(c))

    def test_counter_sensitivity(self):
        a = splitmix64(np.array([1], dtype=np.uint64))
        b = splitmix64(np.array([2], dtype=np.uint64))
        assert a[0] != b[0]

    def test_bit_balance(self):
        bits = splitmix64(np.arange(100_000, dtype=np.uint64))
        ones = sum(
            int(np.sum((bits >> np.uint64(k)) & np.uint64(1)))
            for k in range(64)
        )
        frac = ones / (64 * 100_000)
        assert 0.49 < frac < 0.51


class TestVectorRng:
    def test_skippable_streams_match(self):
        """The paper's vectorization requirement: thread k can jump to
        its sub-stream without generating the prefix."""
        whole = VectorRng(seed=9).uniform(1000)
        skipped = VectorRng(seed=9)
        skipped.skip(600)
        assert np.array_equal(skipped.uniform(400), whole[600:])

    def test_batches_compose(self):
        gen = VectorRng(seed=1)
        a = np.concatenate([gen.uniform(100), gen.uniform(100)])
        b = VectorRng(seed=1).uniform(200)
        assert np.array_equal(a, b)

    def test_seeds_independent(self):
        a = VectorRng(seed=1).uniform(1000)
        b = VectorRng(seed=2).uniform(1000)
        assert not np.array_equal(a, b)

    def test_range(self):
        u = VectorRng(seed=3).uniform(100_000)
        assert np.all(u >= 0.0) and np.all(u < 1.0)

    def test_moments(self):
        u = VectorRng(seed=4).uniform(1_000_000)
        assert np.mean(u) == pytest.approx(0.5, abs=2e-3)
        assert np.var(u) == pytest.approx(1.0 / 12.0, abs=2e-3)
        # lag-1 autocorrelation of a counter-based stream should vanish
        c = np.corrcoef(u[:-1], u[1:])[0, 1]
        assert abs(c) < 5e-3

    def test_uniform_pairs(self):
        gen = VectorRng(seed=5)
        u1, u2 = gen.uniform_pairs(100)
        flat = VectorRng(seed=5).uniform(200)
        assert np.array_equal(u1, flat[0::2])
        assert np.array_equal(u2, flat[1::2])

    def test_position_tracking(self):
        gen = VectorRng()
        gen.uniform(10)
        gen.skip(5)
        assert gen.position == 15

    def test_validation(self):
        with pytest.raises(ValueError):
            VectorRng(seed=-1)
        with pytest.raises(ValueError):
            VectorRng().uniform(0)
        with pytest.raises(ValueError):
            VectorRng().skip(-1)

    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=1, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_skip_equals_generate(self, offset, count):
        ref = VectorRng(seed=11)
        ref.skip(offset)
        direct = VectorRng(seed=11, start=offset)
        assert np.array_equal(ref.uniform(count), direct.uniform(count))
