"""Tests for the vector math recipe registry."""

import numpy as np
import pytest

from repro.engine.scheduler import schedule_on
from repro.machine.isa import Instruction, InstructionStream, Op
from repro.machine.microarch import A64FX, SKYLAKE_6140
from repro.mathlib.ulp import max_ulp_error
from repro.mathlib.vectormath import RECIPES, build_recipe, numpy_impl


def _schedule_recipe(name, march):
    body = [Instruction(Op.VLOAD, "x")]
    body += build_recipe(name, march, ["x"], "y", "k")
    body.append(Instruction(Op.VSTORE, "", ("y",)))
    stream = InstructionStream(body=body, elements_per_iter=march.lanes_f64)
    return schedule_on(march, stream)


class TestRegistry:
    def test_unknown_recipe(self):
        with pytest.raises(KeyError, match="available"):
            build_recipe("exp_quantum", A64FX, ["x"], "y", "k")
        with pytest.raises(KeyError):
            numpy_impl("exp_quantum")

    def test_fexpa_recipes_need_sve(self):
        with pytest.raises(ValueError, match="FEXPA"):
            build_recipe("exp_fexpa_estrin", SKYLAKE_6140, ["x"], "y", "k")

    @pytest.mark.parametrize("name", sorted(RECIPES))
    def test_all_recipes_build_and_validate(self, name):
        march = A64FX if "svml" not in name else SKYLAKE_6140
        args = ["x", "p"] if name.startswith("pow_") else ["x"]
        instrs = build_recipe(name, march, args, "y", "k")
        assert instrs, name
        assert any(i.dest == "y" for i in instrs)
        loads = [Instruction(Op.VLOAD, a) for a in args]
        stream = InstructionStream(
            body=[*loads, *instrs], elements_per_iter=march.lanes_f64,
        )
        stream.validate()

    def test_fexpa_kernel_instruction_budget(self):
        """Sec. IV: 'There are 15 floating-point instructions in the loop
        body' — the modeled kernel must be in that class."""
        instrs = build_recipe("exp_fexpa_estrin", A64FX, ["x"], "y", "k")
        stream = InstructionStream(body=list(instrs), elements_per_iter=8)
        assert 12 <= stream.fp_ops() + stream.counts().get(Op.ILOGIC, 0) <= 17

    def test_fexpa_kernel_contains_fexpa(self):
        instrs = build_recipe("exp_fexpa_estrin", A64FX, ["x"], "y", "k")
        assert any(i.op is Op.FEXPA for i in instrs)


class TestRelativeCosts:
    """The Section IV ordering must emerge from the schedules."""

    def test_exp_ordering_on_a64fx(self):
        fexpa = _schedule_recipe("exp_fexpa_estrin", A64FX).cycles_per_element
        cray = _schedule_recipe("exp_table13_estrin", A64FX).cycles_per_element
        sleef = _schedule_recipe("exp_sleef_horner13", A64FX).cycles_per_element
        assert fexpa < cray < sleef

    def test_estrin_beats_horner(self):
        """'the Estrin form ... is slightly faster than the Horner form'"""
        estrin = _schedule_recipe("exp_fexpa_estrin", A64FX).cycles_per_element
        horner = _schedule_recipe("exp_fexpa_horner", A64FX).cycles_per_element
        assert estrin < horner <= estrin * 1.6

    def test_sleef_pow_is_the_10x_kernel(self):
        fast = _schedule_recipe("pow_explog_fast", A64FX).cycles_per_element
        sleef = _schedule_recipe("pow_sleef", A64FX).cycles_per_element
        assert 5.0 <= sleef / fast <= 16.0


class TestNumericBindings:
    @pytest.mark.parametrize("name", [n for n in sorted(RECIPES)
                                      if n.startswith(("exp_", "log_", "sin_"))])
    def test_unary_numerics_accurate(self, name):
        rng = np.random.default_rng(1)
        x = rng.uniform(0.1, 3.0, 20_000)
        fn = numpy_impl(name)
        ref = {"exp": np.exp, "log": np.log, "sin": np.sin}[name.split("_")[0]]
        assert max_ulp_error(fn(x), ref(x)) <= 8.0

    @pytest.mark.parametrize("name", [n for n in sorted(RECIPES)
                                      if n.startswith("pow_")])
    def test_pow_numerics_accurate(self, name):
        rng = np.random.default_rng(2)
        x = rng.uniform(0.1, 5.0, 20_000)
        got = numpy_impl(name)(x, 1.5)
        assert np.allclose(got, np.power(x, 1.5), rtol=1e-10)
