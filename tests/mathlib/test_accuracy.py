"""Tests for the accuracy-study harness (the paper's announced follow-up)."""

import numpy as np
import pytest

from repro.mathlib.accuracy import (
    DOMAINS,
    accuracy_sweep,
    speed_accuracy_frontier,
)


@pytest.fixture(scope="module")
def sweep():
    return accuracy_sweep(samples=20_000)


class TestSweep:
    def test_covers_all_functions_and_domains(self, sweep):
        fns = {r.function for r in sweep}
        assert fns == set(DOMAINS)
        for fn, domains in DOMAINS.items():
            got = {r.domain for r in sweep if r.function == fn}
            assert got == {d[0] for d in domains}

    def test_all_vectorized_class_accuracy(self, sweep):
        """Every production implementation stays within the 'few ulp'
        vectorized-library class on its core domain — except the
        deliberately degraded fast-math variants."""
        for r in sweep:
            if "fast" in r.implementation or "8term" in r.implementation:
                continue
            if "wide" in r.domain and "pow" in r.function:
                continue  # pow error amplification, documented
            assert r.max_ulp <= 8.0, (r.function, r.implementation, r.domain)

    def test_fast_math_variants_measurably_worse(self, sweep):
        def worst(impl_substr, fn):
            return max(r.max_ulp for r in sweep
                       if r.function == fn and impl_substr in r.implementation)

        assert worst("2step", "recip") > worst("3step", "recip")
        assert worst("8term", "exp") > worst("13term", "exp")

    def test_refined_exp_is_best(self, sweep):
        exp_rows = [r for r in sweep
                    if r.function == "exp" and "wide" in r.domain]
        best = min(exp_rows, key=lambda r: r.max_ulp)
        assert "refined" in best.implementation

    def test_mean_below_max(self, sweep):
        for r in sweep:
            assert r.mean_ulp <= r.max_ulp + 1e-12

    def test_rows_render(self, sweep):
        row = sweep[0].as_row()
        assert set(row) == {"function", "implementation", "domain",
                            "max_ulp", "mean_ulp"}

    def test_function_filter(self):
        rows = accuracy_sweep(samples=5_000, functions=["exp"])
        assert {r.function for r in rows} == {"exp"}
        with pytest.raises(KeyError):
            accuracy_sweep(samples=100, functions=["erf"])

    def test_validation(self):
        with pytest.raises(ValueError):
            accuracy_sweep(samples=0)


class TestFrontier:
    def test_sorted_by_cycles(self):
        rows = speed_accuracy_frontier(samples=20_000)
        cycles = [r["cycles_per_elem"] for r in rows]
        assert cycles == sorted(cycles)

    def test_pareto_story(self):
        """Accuracy costs cycles: the most accurate exp is not the
        cheapest, and the cheapest is not the most accurate."""
        rows = speed_accuracy_frontier(samples=20_000)
        cheapest = rows[0]
        most_accurate = min(rows, key=lambda r: r["max_ulp"])
        assert most_accurate["cycles_per_elem"] > cheapest["cycles_per_elem"]
