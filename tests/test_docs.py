"""Documentation consistency: the docs must describe this repository.

Checks that README/DESIGN/EXPERIMENTS reference real experiment ids,
real modules and real commands — so the docs cannot silently rot as the
code moves.
"""

import importlib
import pathlib
import re
import shlex

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


def _read(name: str) -> str:
    path = ROOT / name
    assert path.exists(), f"{name} is missing"
    return path.read_text()


class TestDocsExist:
    @pytest.mark.parametrize("name", ["README.md", "DESIGN.md",
                                      "EXPERIMENTS.md"])
    def test_present_and_substantial(self, name):
        text = _read(name)
        assert len(text) > 2000, f"{name} looks stubbed"


class TestExperimentIds:
    def test_experiments_md_covers_registry(self):
        from repro.bench.harness import EXPERIMENTS

        text = _read("EXPERIMENTS.md")
        for exp_id in EXPERIMENTS:
            assert f"`{exp_id}`" in text, exp_id

    def test_extras_documented(self):
        from repro.bench.harness import EXTRAS

        text = _read("EXPERIMENTS.md")
        for exp_id in EXTRAS:
            assert f"`{exp_id}`" in text, exp_id


class TestModuleReferences:
    def test_design_inventory_modules_import(self):
        """Every `repro.x.y` dotted path named in DESIGN.md must import."""
        text = _read("DESIGN.md")
        refs = set(re.findall(r"`(repro(?:\.\w+)+)`", text))
        assert refs, "DESIGN.md names no modules?"
        for ref in sorted(refs):
            base = ref.split("/")[0]
            # table rows like repro.hpcc.stream/randomaccess/ptrans
            for part in ref.replace("repro.", "", 1).split("/"):
                mod = f"repro.{part}" if not part.startswith("repro") else part
                if "/" in ref and part != ref.replace("repro.", "", 1):
                    mod = f"{base.rsplit('.', 1)[0]}.{part}"
                try:
                    importlib.import_module(mod)
                except ModuleNotFoundError:
                    # try as attribute of parent module
                    parent, _, attr = mod.rpartition(".")
                    m = importlib.import_module(parent)
                    assert hasattr(m, attr), f"DESIGN.md references {ref}"

    def test_readme_example_scripts_exist(self):
        text = _read("README.md")
        for script in re.findall(r"`examples/(\w+\.py)`", text):
            assert (ROOT / "examples" / script).exists(), script

    def test_readme_cli_commands_work(self):
        from repro.__main__ import main

        text = _read("README.md")
        assert "python -m repro" in text
        assert main(["list"]) == 0

    def test_docs_module_paths_import(self):
        """Every backticked `repro.x.y` path in README + docs/*.md must
        be a real module or a real attribute of its parent module."""
        for path in [ROOT / "README.md"] + _docs_files():
            refs = set(re.findall(r"`(repro(?:\.\w+)+)`", path.read_text()))
            for ref in sorted(refs):
                try:
                    importlib.import_module(ref)
                except ModuleNotFoundError:
                    parent, _, attr = ref.rpartition(".")
                    mod = importlib.import_module(parent)
                    assert hasattr(mod, attr), (
                        f"{path.name} references {ref}"
                    )


def _docs_files():
    docs = sorted((ROOT / "docs").glob("*.md"))
    assert docs, "docs/ directory is empty"
    return docs


def _fenced_lines(text):
    """Lines inside ``` fences, with the fence's info tag."""
    tag = None
    for line in text.splitlines():
        if line.startswith("```"):
            tag = line[3:].strip() if tag is None else None
        elif tag is not None:
            yield tag, line


def _quoted_cli_lines():
    """Every ``python -m repro ...`` line inside a shell fence of
    README.md or docs/*.md, as ``(source, line)`` pairs."""
    out = []
    for path in [ROOT / "README.md"] + _docs_files():
        for tag, raw in _fenced_lines(path.read_text()):
            if tag not in ("", "bash", "sh", "console"):
                continue
            line = raw.split("#")[0].strip().removeprefix("$ ")
            # drop env prefixes / pipelines around the command itself
            if "python -m repro" not in line:
                continue
            line = line[line.index("python -m repro"):]
            line = line.split("|")[0].split(">")[0].strip()
            out.append((path.name, line))
    return out


class TestDocsDirectory:
    """docs/*.md must stay executable and link-clean (enforced in CI)."""

    @pytest.mark.parametrize("name", ["PROFILING.md", "ARCHITECTURE.md",
                                      "PERFORMANCE.md", "VALIDATION.md"])
    def test_required_pages_exist(self, name):
        text = (ROOT / "docs" / name).read_text()
        assert len(text) > 2000, f"docs/{name} looks stubbed"

    def test_index_links_every_page(self):
        """docs/README.md is the directory index: every sibling page
        must be linked from it."""
        index = (ROOT / "docs" / "README.md").read_text()
        for page in _docs_files():
            if page.name == "README.md":
                continue
            assert f"({page.name})" in index, (
                f"docs/README.md does not link {page.name}"
            )

    @pytest.mark.parametrize(
        "path", _docs_files(), ids=lambda p: p.name
    )
    def test_python_fences_execute(self, path):
        """Every ```python fence in a docs page must run.

        Blocks within one page share a namespace (so later examples can
        build on earlier ones), and each page starts fresh.
        """
        blocks = re.findall(r"```python\n(.*?)```", path.read_text(), re.S)
        namespace: dict = {"__name__": f"docs.{path.stem}"}
        for i, block in enumerate(blocks):
            code = compile(block, f"{path.name}:block{i}", "exec")
            exec(code, namespace)  # noqa: S102 - the docs ARE the test

    @pytest.mark.parametrize(
        "path",
        [pathlib.Path("README.md"), pathlib.Path("DESIGN.md"),
         pathlib.Path("EXPERIMENTS.md")] + [
            p.relative_to(ROOT) for p in _docs_files()
        ],
        ids=str,
    )
    def test_intra_repo_links_resolve(self, path):
        """Relative markdown links must point at files that exist."""
        text = (ROOT / path).read_text()
        for label, target in re.findall(r"\[([^\]]+)\]\(([^)]+)\)", text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target = target.split("#")[0]
            resolved = (ROOT / path).parent / target
            assert resolved.exists(), (
                f"{path}: dead link [{label}]({target})"
            )

    def test_profiling_doc_names_real_counters(self):
        """Counter names quoted in PROFILING.md must be emitted by an
        actual gather/exp profile (no documented-but-phantom counters)."""
        from repro.perf.profile import profile_kernel

        text = (ROOT / "docs" / "PROFILING.md").read_text()
        emitted = set()
        for kernel in ("gather", "exp"):
            emitted |= set(profile_kernel(kernel, n=2_000_000).counters)
        documented = set(
            re.findall(r"`((?:pipeline|exec|memory)\.[a-z_.]+)`", text)
        )
        documented = {d.rstrip(".") for d in documented}
        for name in documented:
            prefix_ok = any(
                e == name or e.startswith(name + ".") for e in emitted
            )
            assert prefix_ok, f"PROFILING.md documents phantom counter {name}"


class TestQuotedCliCommands:
    """Fenced ``python -m repro ...`` lines must parse against the real
    CLI — a renamed subcommand or retired flag fails the docs build."""

    def test_docs_quote_cli_commands(self):
        assert len(_quoted_cli_lines()) >= 10

    @pytest.mark.parametrize(
        "source,line", _quoted_cli_lines(),
        ids=[f"{s}:{c}" for s, c in _quoted_cli_lines()],
    )
    def test_quoted_line_parses(self, source, line):
        from repro.__main__ import parse_command

        argv = shlex.split(line)
        assert argv[:3] == ["python", "-m", "repro"], f"{source}: {line}"
        try:
            parse_command(argv[3:])  # raises ValueError on a stale line
        except ValueError as exc:
            pytest.fail(f"{source} quotes invalid command {line!r}: {exc}")


class TestCalibrationInventory:
    def test_design_lists_every_toolchain_factor(self):
        """The DESIGN.md calibration table must mention the anomaly
        factors actually present in the workloads."""
        text = _read("DESIGN.md")
        assert "toolchain_factor" in text
        assert "PARALLEL_FACTORS" in text
        assert "kernel_efficiency" in text
