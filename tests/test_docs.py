"""Documentation consistency: the docs must describe this repository.

Checks that README/DESIGN/EXPERIMENTS reference real experiment ids,
real modules and real commands — so the docs cannot silently rot as the
code moves.
"""

import importlib
import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


def _read(name: str) -> str:
    path = ROOT / name
    assert path.exists(), f"{name} is missing"
    return path.read_text()


class TestDocsExist:
    @pytest.mark.parametrize("name", ["README.md", "DESIGN.md",
                                      "EXPERIMENTS.md"])
    def test_present_and_substantial(self, name):
        text = _read(name)
        assert len(text) > 2000, f"{name} looks stubbed"


class TestExperimentIds:
    def test_experiments_md_covers_registry(self):
        from repro.bench.harness import EXPERIMENTS

        text = _read("EXPERIMENTS.md")
        for exp_id in EXPERIMENTS:
            assert f"`{exp_id}`" in text, exp_id

    def test_extras_documented(self):
        from repro.bench.harness import EXTRAS

        text = _read("EXPERIMENTS.md")
        for exp_id in EXTRAS:
            assert f"`{exp_id}`" in text, exp_id


class TestModuleReferences:
    def test_design_inventory_modules_import(self):
        """Every `repro.x.y` dotted path named in DESIGN.md must import."""
        text = _read("DESIGN.md")
        refs = set(re.findall(r"`(repro(?:\.\w+)+)`", text))
        assert refs, "DESIGN.md names no modules?"
        for ref in sorted(refs):
            base = ref.split("/")[0]
            # table rows like repro.hpcc.stream/randomaccess/ptrans
            for part in ref.replace("repro.", "", 1).split("/"):
                mod = f"repro.{part}" if not part.startswith("repro") else part
                if "/" in ref and part != ref.replace("repro.", "", 1):
                    mod = f"{base.rsplit('.', 1)[0]}.{part}"
                try:
                    importlib.import_module(mod)
                except ModuleNotFoundError:
                    # try as attribute of parent module
                    parent, _, attr = mod.rpartition(".")
                    m = importlib.import_module(parent)
                    assert hasattr(m, attr), f"DESIGN.md references {ref}"

    def test_readme_example_scripts_exist(self):
        text = _read("README.md")
        for script in re.findall(r"`examples/(\w+\.py)`", text):
            assert (ROOT / "examples" / script).exists(), script

    def test_readme_cli_commands_work(self):
        from repro.__main__ import main

        text = _read("README.md")
        assert "python -m repro" in text
        assert main(["list"]) == 0


class TestCalibrationInventory:
    def test_design_lists_every_toolchain_factor(self):
        """The DESIGN.md calibration table must mention the anomaly
        factors actually present in the workloads."""
        text = _read("DESIGN.md")
        assert "toolchain_factor" in text
        assert "PARALLEL_FACTORS" in text
        assert "kernel_efficiency" in text
