"""Tests: the roofline analysis must explain the Fig. 4 winners."""

import pytest

from repro.bench.roofline_study import (
    crossover_intensity,
    roofline_positions,
    workload_intensity,
)


@pytest.fixture(scope="module")
def positions():
    return {r["workload"]: r for r in roofline_positions()}


class TestIntensities:
    def test_ep_is_compute_only(self):
        assert workload_intensity("EP") == float("inf")

    def test_sp_is_the_most_bandwidth_hungry(self):
        grids = {b: workload_intensity(b) for b in ("BT", "SP", "LU")}
        assert min(grids, key=grids.get) == "SP"

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            workload_intensity("FT")


class TestPositions:
    def test_memory_bound_apps_favour_a64fx(self, positions):
        """The roofline explanation of the Fig. 4 pattern."""
        for bench in ("SP", "CG"):
            assert positions[bench]["roofline_favours"] == "A64FX"
            assert positions[bench]["regime"] == "memory-bound"

    def test_ep_regime(self, positions):
        assert positions["EP"]["regime"] == "compute-bound"

    def test_attainable_below_peaks(self, positions):
        from repro.machine.systems import get_system

        a_peak = get_system("ookami").peak_gflops_node
        s_peak = get_system("skylake").peak_gflops_node
        for r in positions.values():
            assert r["a64fx_attainable_gflops"] <= a_peak + 1
            assert r["skylake_attainable_gflops"] <= s_peak + 1

    def test_crossover_in_plausible_band(self):
        """The Skylake node is closest to the A64FX somewhere between
        the two machines' ridge points."""
        x = crossover_intensity()
        assert 1.0 < x < 50.0
