"""Tests for the experiment registry and report rendering."""

import pytest

from repro._util import format_table, geomean
from repro.bench.harness import EXPERIMENTS, run_all, run_experiment
from repro.bench.report import render_experiment, render_rows


class TestRegistry:
    def test_covers_every_paper_artifact(self):
        """Every table and figure of the evaluation must be registered."""
        expected = {
            "table1", "fig1", "fig2", "sec4", "fig3", "fig4", "fig5",
            "fig6", "table2", "fig7", "table3", "fig8", "fig9ab", "fig9cd",
        }
        assert set(EXPERIMENTS) == expected

    def test_run_experiment(self):
        rows = run_experiment("table3")
        assert len(rows) == 5

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="available"):
            run_experiment("fig99")

    @pytest.mark.slow
    def test_run_all_returns_rows_everywhere(self):
        results = run_all()
        for exp_id, rows in results.items():
            assert rows, exp_id
            assert all(isinstance(r, dict) for r in rows)


class TestRendering:
    def test_render_rows(self):
        text = render_rows("Title", [{"a": 1, "b": 2.5}])
        assert "Title" in text and "a" in text and "2.5" in text

    def test_render_experiment(self):
        text = render_experiment("table1")
        assert "fujitsu" in text
        assert "-Kfast" in text

    def test_render_unknown(self):
        with pytest.raises(KeyError):
            render_experiment("fig99")


class TestUtil:
    def test_format_table_empty(self):
        assert "empty" in format_table([])

    def test_format_table_column_order(self):
        text = format_table([{"x": 1, "y": 2}], columns=["y", "x"])
        assert text.index("y") < text.index("x")

    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, -1.0])
