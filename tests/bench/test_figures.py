"""Paper-shape regression tests over the figure generators.

These are the headline acceptance tests of the reproduction: each figure
generator must land inside the bands the paper's text asserts.
"""

import math

import pytest

from repro.bench.expected import FIG1_FIG2_RATIO_BANDS, SEC4_EXP_CYCLES
from repro.bench.figures import (
    fig1_loop_suite,
    fig2_math_suite,
    fig8_dgemm,
    fig9_fft,
    fig9_hpl,
    sec4_exp_study,
    table1_flags,
    table3_systems,
)


@pytest.fixture(scope="module")
def fig12_rows():
    return fig1_loop_suite() + fig2_math_suite()


def _ratio(rows, loop, toolchain):
    return next(
        r["rel_skylake"] for r in rows
        if r["loop"] == loop and r["toolchain"] == toolchain
    )


class TestTable1:
    def test_five_rows_with_flags(self):
        rows = table1_flags()
        assert len(rows) == 5
        assert all(r["flags"] for r in rows)


class TestFig1Fig2Bands:
    @pytest.mark.parametrize("loop", sorted(FIG1_FIG2_RATIO_BANDS))
    def test_fujitsu_bands(self, fig12_rows, loop):
        """'the Fujitsu tool chain performance hovers at the factor of 2
        expected from the ratio of the clock speeds, except for the
        predicate operation that is 3-fold slower ... and the short
        gather that is only circa 1.5-fold slower'"""
        lo, hi = FIG1_FIG2_RATIO_BANDS[loop]
        assert lo <= _ratio(fig12_rows, loop, "fujitsu") <= hi

    def test_fujitsu_best_on_a64fx(self, fig12_rows):
        """'the Fujitsu toolchain delivers the highest performance for
        all loops, followed by Cray, and ARM/GNU'"""
        loops = {r["loop"] for r in fig12_rows}
        for loop in loops:
            fj = _ratio(fig12_rows, loop, "fujitsu")
            for other in ("cray", "arm", "gnu"):
                assert fj <= _ratio(fig12_rows, loop, other) * 1.02, (
                    loop, other)

    def test_short_gather_best_relative_showing(self, fig12_rows):
        """The 128-byte window coalescing: short gather is the closest
        the A64FX gets to Skylake in the suite."""
        sg = _ratio(fig12_rows, "short_gather", "fujitsu")
        g = _ratio(fig12_rows, "gather", "fujitsu")
        assert sg < 0.75 * g

    def test_gnu_catastrophes(self, fig12_rows):
        """'some kernels might run 30-times slower than if using the
        Fujitsu or Cray compilers' (scalar libm + FDIV/FSQRT selection)"""
        for loop in ("recip", "sqrt", "exp", "sin", "pow"):
            gnu = _ratio(fig12_rows, loop, "gnu")
            fj = _ratio(fig12_rows, loop, "fujitsu")
            assert gnu / fj > 10.0, loop

    def test_arm_sqrt_20x_class(self, fig12_rows):
        """'10x slower on pow and 20x on square root' (the blocking
        FSQRT selection)"""
        arm = _ratio(fig12_rows, "sqrt", "arm")
        cray = _ratio(fig12_rows, "sqrt", "cray")
        assert arm / cray > 15.0

    def test_arm_pow_10x_class(self, fig12_rows):
        arm = _ratio(fig12_rows, "pow", "arm")
        fj = _ratio(fig12_rows, "pow", "fujitsu")
        assert 5.0 < arm / fj < 16.0

    def test_arm_gnu_competitive_on_simple(self, fig12_rows):
        """'For the simple loops, the ARM and GNU compilers are fairly
        competitive, but ... up to 2 times slower.'"""
        fj = _ratio(fig12_rows, "simple", "fujitsu")
        for tc in ("arm", "gnu"):
            assert fj < _ratio(fig12_rows, "simple", tc) <= 2.4 * fj


class TestSec4:
    @pytest.fixture(scope="class")
    def rows(self):
        return {r["impl"]: r for r in sec4_exp_study(ulp_samples=50_000)}

    def test_gnu_serial_32_cycles(self, rows):
        got = rows["gnu library (scalar libm)"]["cycles_per_elem"]
        assert got == pytest.approx(SEC4_EXP_CYCLES["gnu-serial"], rel=0.1)

    def test_library_ordering(self, rows):
        """'The vectorized ARM, Cray, and Fujitsu compilers take 6, 4.2,
        and 2.1 cycles, respectively'"""
        fj = rows["fujitsu library"]["cycles_per_elem"]
        cray = rows["cray library"]["cycles_per_elem"]
        arm = rows["arm library"]["cycles_per_elem"]
        gnu = rows["gnu library (scalar libm)"]["cycles_per_elem"]
        assert fj < cray < arm < gnu

    def test_fexpa_kernel_cycle_class(self, rows):
        """The hand kernel lands in the ~2 cycles/element class."""
        got = rows["fexpa-vla (paper kernel)"]["cycles_per_elem"]
        assert 1.0 <= got <= 2.6

    def test_unrolling_helps(self, rows):
        """'Unrolling once decreased this to 1.9 cycles/element.'"""
        vla = rows["fexpa-vla (paper kernel)"]["cycles_per_elem"]
        unrolled = rows["fexpa-unrolled-x2"]["cycles_per_elem"]
        assert unrolled < vla

    def test_estrin_beats_horner(self, rows):
        """'the Estrin form ... is slightly faster than the Horner form'"""
        estrin = rows["fexpa-vla (paper kernel)"]["cycles_per_elem"]
        horner = rows["fexpa-horner"]["cycles_per_elem"]
        assert estrin < horner

    def test_fexpa_ulp_class(self, rows):
        """'about 6 ulp precision'"""
        assert rows["fexpa-vla (paper kernel)"]["max_ulp"] <= 6.0

    def test_refined_improves_ulp(self, rows):
        base = rows["fexpa-vla (paper kernel)"]["max_ulp"]
        refined = rows["fexpa-refined (corrected last FMA)"]["max_ulp"]
        assert refined < base


class TestTable3AndHpcc:
    def test_table3_shape(self):
        rows = table3_systems()
        assert len(rows) == 5
        ook = rows[0]
        assert ook["peak_gflops_core"] == 57.6
        assert ook["peak_gflops_node"] == 2765

    def test_fig8_has_all_pairs(self):
        rows = fig8_dgemm()
        assert len(rows) == 8
        assert all(r["gflops_per_core"] > 0 for r in rows)

    def test_fig9_multi_node_only_for_ookami(self):
        rows = fig9_hpl()
        multi = {r["system"] for r in rows if r["nodes"] > 1}
        assert multi == {"ookami"}

    def test_fig9_fft_rows(self):
        rows = fig9_fft()
        assert any(r["library"] == "fujitsu-fftw" for r in rows)
        assert all(math.isfinite(r["gflops"]) for r in rows)
