"""Tests for the ``python -m repro`` CLI."""

import json

import pytest

from repro.__main__ import main, parse_command


class TestCli:
    def test_help(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "Commands" in out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "table3" in out

    def test_run_single(self, capsys):
        assert main(["run", "table3"]) == 0
        out = capsys.readouterr().out
        assert "Ookami" in out
        assert "57.6" in out

    def test_run_unknown(self, capsys):
        assert main(["run", "fig99"]) == 1
        assert "unknown experiment" in capsys.readouterr().out

    def test_asm(self, capsys):
        assert main(["asm", "sqrt", "gnu"]) == 0
        out = capsys.readouterr().out
        assert "fsqrt" in out
        assert "cycles/element" in out

    def test_asm_intel_targets_skylake(self, capsys):
        assert main(["asm", "simple", "intel"]) == 0
        out = capsys.readouterr().out
        assert "zmm" in out

    def test_asm_usage(self, capsys):
        assert main(["asm", "sqrt"]) == 1
        assert "usage" in capsys.readouterr().out

    def test_pipeline(self, capsys):
        assert main(["pipeline", "simple", "fujitsu"]) == 0
        out = capsys.readouterr().out
        assert "cycle" in out and "legend" in out

    def test_unknown_command(self, capsys):
        assert main(["frobnicate"]) == 1

    @pytest.mark.slow
    def test_verify(self, capsys):
        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        assert out.count("OK") == 5


class TestMachinesCommand:
    def test_list(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        for key in ("a64fx", "rvv", "thunderx2"):
            assert key in out
        assert "core-only" in out

    def test_show(self, capsys):
        assert main(["machines", "show", "a64fx"]) == 0
        out = capsys.readouterr().out
        assert "57.6" in out
        assert "Ookami" in out

    def test_show_json_round_trips(self, capsys):
        from repro.machine.spec import A64FX_SPEC, MachineSpec

        assert main(["machines", "show", "a64fx", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert MachineSpec.from_dict(doc) == A64FX_SPEC

    def test_show_unknown(self, capsys):
        assert main(["machines", "show", "cray-1"]) == 1
        assert "unknown machine" in capsys.readouterr().out

    def test_report(self, capsys):
        assert main(["machines", "report"]) == 0
        out = capsys.readouterr().out
        assert "machine crossover" in out
        assert "a64fx" in out

    def test_report_json_out(self, capsys, tmp_path):
        out_path = tmp_path / "report.json"
        assert main(["machines", "report", "--json",
                     "--out", str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        assert doc["format"] == "repro.machines/1"
        assert doc["a64fx_wins"] >= 1


class TestSweepCommand:
    def test_preset_machine_sweep(self, capsys):
        assert main(["sweep", "--kernels", "simple", "--machine", "rvv",
                     "--tier", "ecm"]) == 0
        out = capsys.readouterr().out
        assert "RVV-HBM" in out

    def test_json_rows(self, capsys):
        assert main(["sweep", "--kernels", "simple,sqrt",
                     "--toolchains", "fujitsu", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [r["loop"] for r in rows] == ["simple", "sqrt"]
        assert all(r["march"] == "A64FX" for r in rows)

    def test_grid(self, capsys):
        assert main(["sweep", "--grid", "--machines", "24",
                     "--kernels", "simple"]) == 0
        out = capsys.readouterr().out
        assert "24 machines" in out
        assert "best machine per kernel" in out

    def test_grid_json(self, capsys):
        assert main(["sweep", "--grid", "--machines", "16",
                     "--kernels", "simple", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["format"] == "repro.sweep-grid/1"
        assert doc["machines"] == 16

    def test_rejects_unknown_kernel(self, capsys):
        assert main(["sweep", "--kernels", "frob"]) == 1
        assert "unknown kernel" in capsys.readouterr().out

    def test_rejects_machine_with_grid(self, capsys):
        assert main(["sweep", "--grid", "--machine", "rvv"]) == 1
        assert "sweep failed" in capsys.readouterr().out


class TestParseCommandStaticValidation:
    @pytest.mark.parametrize("argv", [
        ["machines"],
        ["machines", "list"],
        ["machines", "show", "rvv"],
        ["machines", "show", "a64fx", "--json"],
        ["machines", "report", "--json"],
        ["machines", "report", "--out", "r.json"],
        ["sweep", "--kernels", "simple,sqrt", "--machine", "rvv"],
        ["sweep", "--grid", "--machines", "1000"],
        ["sweep", "--grid", "--out", "grid.json", "--json"],
    ])
    def test_valid(self, argv):
        assert parse_command(argv) == argv[0]

    @pytest.mark.parametrize("argv", [
        ["machines", "show"],
        ["machines", "show", "cray-1"],
        ["machines", "teleport"],
        ["machines", "report", "--frob"],
        ["sweep", "--machines", "zero"],
        ["sweep", "--machines", "0", "--grid"],
        ["sweep", "--tier", "warp"],
        ["sweep", "--machine", "cray-1"],
        ["sweep", "--toolchains", "fujitsu,msvc"],
        ["sweep", "--out", "x.json"],
    ])
    def test_invalid(self, argv):
        with pytest.raises(ValueError):
            parse_command(argv)
