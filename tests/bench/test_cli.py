"""Tests for the ``python -m repro`` CLI."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_help(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "Commands" in out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "table3" in out

    def test_run_single(self, capsys):
        assert main(["run", "table3"]) == 0
        out = capsys.readouterr().out
        assert "Ookami" in out
        assert "57.6" in out

    def test_run_unknown(self, capsys):
        assert main(["run", "fig99"]) == 1
        assert "unknown experiment" in capsys.readouterr().out

    def test_asm(self, capsys):
        assert main(["asm", "sqrt", "gnu"]) == 0
        out = capsys.readouterr().out
        assert "fsqrt" in out
        assert "cycles/element" in out

    def test_asm_intel_targets_skylake(self, capsys):
        assert main(["asm", "simple", "intel"]) == 0
        out = capsys.readouterr().out
        assert "zmm" in out

    def test_asm_usage(self, capsys):
        assert main(["asm", "sqrt"]) == 1
        assert "usage" in capsys.readouterr().out

    def test_pipeline(self, capsys):
        assert main(["pipeline", "simple", "fujitsu"]) == 0
        out = capsys.readouterr().out
        assert "cycle" in out and "legend" in out

    def test_unknown_command(self, capsys):
        assert main(["frobnicate"]) == 1

    @pytest.mark.slow
    def test_verify(self, capsys):
        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        assert out.count("OK") == 5
