"""Tests for the EXTRAS registry (beyond-the-paper studies)."""

import pytest

from repro.bench.harness import EXPERIMENTS, EXTRAS, run_all, run_experiment
from repro.bench.report import render_experiment


class TestExtrasRegistry:
    def test_expected_set(self):
        assert set(EXTRAS) == {
            "accuracy", "ladder", "stream", "gups", "ptrans",
            "ablations", "roofline",
        }

    def test_disjoint_from_paper_artifacts(self):
        assert not set(EXTRAS) & set(EXPERIMENTS)

    @pytest.mark.parametrize("exp_id", ["ladder", "stream", "gups",
                                        "ptrans", "roofline"])
    def test_cheap_extras_run(self, exp_id):
        rows = run_experiment(exp_id)
        assert rows and all(isinstance(r, dict) for r in rows)

    @pytest.mark.slow
    @pytest.mark.parametrize("exp_id", ["accuracy", "ablations"])
    def test_heavy_extras_run(self, exp_id):
        assert run_experiment(exp_id)

    def test_render_extra(self):
        text = render_experiment("gups")
        assert "ookami" in text

    def test_run_all_excludes_extras_by_default(self):
        # run_all() without extras must be the paper's artifact set
        assert set(run_all()) == set(EXPERIMENTS)

    def test_unknown_mentions_extras(self):
        with pytest.raises(KeyError, match="extras"):
            run_experiment("fig99")


class TestExtrasContent:
    def test_stream_node_ratio(self):
        rows = run_experiment("stream")
        by = {(r["system"], r["threads"]): r["triad_gbs"] for r in rows}
        assert by[("ookami", 48)] / by[("skylake", 36)] > 4.0

    def test_ladder_reaches_three_orders(self):
        rows = run_experiment("ladder")
        assert rows[-1]["speedup"] > 300

    def test_ptrans_multi_node_comm_bound(self):
        rows = run_experiment("ptrans")
        ook = {r["nodes"]: r["gbs"] for r in rows if r["system"] == "ookami"}
        assert ook[8] < ook[1]
