"""Tests for the kernel executor (compute + memory composition)."""

import pytest

from repro._util import KIB
from repro.compilers.codegen import compile_loop
from repro.compilers.toolchains import FUJITSU
from repro.engine.executor import KernelExecutor
from repro.kernels.loops import build_loop
from repro.machine.memory import MemoryStream
from repro.machine.microarch import A64FX
from repro.machine.numa import PagePlacement
from repro.machine.systems import get_system


@pytest.fixture()
def executor() -> KernelExecutor:
    return KernelExecutor(get_system("ookami"))


@pytest.fixture()
def simple_schedule():
    return compile_loop(build_loop("simple"), FUJITSU, A64FX).schedule


class TestCompose:
    def test_l1_resident_is_compute_bound(self, executor, simple_schedule):
        streams = [
            MemoryStream("x", 64, 16 * KIB),
            MemoryStream("y", 64, 16 * KIB, is_store=True),
        ]
        run = executor.run(simple_schedule, streams, n_iters=1000)
        assert run.bound == "compute"
        assert run.memory_seconds == 0.0

    def test_dram_stream_adds_memory_time(self, executor, simple_schedule):
        streams = [MemoryStream("x", 256, 1e9)]
        run = executor.run(simple_schedule, streams, n_iters=1e6)
        assert run.memory_seconds > 0

    def test_max_composition(self, executor, simple_schedule):
        streams = [MemoryStream("x", 4096, 1e9)]  # huge per-iter traffic
        run = executor.run(simple_schedule, streams, n_iters=1e6)
        assert run.seconds == pytest.approx(
            max(run.compute_seconds, run.memory_seconds)
        )
        assert run.bound == "memory"

    def test_compute_time_matches_schedule(self, executor, simple_schedule):
        run = executor.run(simple_schedule, n_iters=1e6)
        expected = simple_schedule.cycles_per_iter * 1e6 / 1.8e9
        assert run.compute_seconds == pytest.approx(expected)
        assert run.seconds == pytest.approx(expected)

    def test_overhead_cycles(self, executor, simple_schedule):
        base = executor.run(simple_schedule, n_iters=100)
        plus = executor.run(simple_schedule, n_iters=100,
                            overhead_cycles=1.8e9)
        assert plus.seconds == pytest.approx(base.seconds + 1.0, rel=1e-6)

    def test_single_domain_placement_slows_memory(self, executor,
                                                  simple_schedule):
        streams = [MemoryStream("x", 4096, 1e9)]
        ft = executor.run(simple_schedule, streams, n_iters=1e6,
                          active_cores_per_domain=12)
        sd = executor.run(simple_schedule, streams, n_iters=1e6,
                          active_cores_per_domain=12,
                          placement=PagePlacement.SINGLE_DOMAIN)
        assert sd.memory_seconds > ft.memory_seconds

    def test_effective_cpi(self, executor, simple_schedule):
        run = executor.run(simple_schedule, n_iters=1000)
        assert run.effective_cpi == pytest.approx(
            simple_schedule.cycles_per_iter, rel=1e-6
        )

    def test_gflops_helper(self, executor, simple_schedule):
        run = executor.run(simple_schedule, n_iters=1000)
        assert run.gflops(1e9) == pytest.approx(1.0 / run.seconds / 1e9 * 1e9,
                                                rel=1e-6)

    def test_rejects_bad_iters(self, executor, simple_schedule):
        with pytest.raises(ValueError):
            executor.run(simple_schedule, n_iters=0)
