"""Tests for the sharded batch scheduler (process-pool fan-out)."""

import pickle

import pytest

from repro.compilers.codegen import compile_loop
from repro.compilers.toolchains import get_toolchain
from repro.engine.batch import clear_tables, schedule_batch
from repro.engine.cache import configure, get_cache
from repro.engine.scheduler import (
    PipelineScheduler,
    ScheduleDivergence,
    clear_memos,
)
from repro.engine.shard import schedule_batch_sharded
from repro.engine.sweep import PoolDowngradeWarning, last_effective_mode
from repro.kernels.loops import build_loop
from repro.machine.microarch import A64FX, SKYLAKE_6140
from repro.perf.counters import ProfileScope


@pytest.fixture(autouse=True)
def fresh_state():
    configure()
    clear_memos()
    clear_tables()
    yield
    configure()
    clear_memos()
    clear_tables()


def _requests():
    """A mixed request set spanning loops, marches and windows."""
    reqs = []
    for loop in ("simple", "gather", "sqrt"):
        for tc_name in ("fujitsu", "gnu", "intel"):
            tc = get_toolchain(tc_name)
            march = SKYLAKE_6140 if tc.target == "x86" else A64FX
            compiled = compile_loop(build_loop(loop), tc, march)
            for window in (None, 8, 24):
                reqs.append((march, compiled.stream, window))
    return reqs


class TestShardedEqualsSerial:
    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_results_bit_identical(self, mode):
        reqs = _requests()
        serial = schedule_batch(reqs, cache=False)
        clear_memos()
        clear_tables()
        sharded = schedule_batch_sharded(
            reqs, cache=False, mode=mode, max_workers=3)
        assert sharded == serial

    def test_matches_scalar_scheduler(self):
        reqs = _requests()
        sharded = schedule_batch_sharded(reqs, cache=False, max_workers=3)
        for (march, stream, window), result in zip(reqs, sharded):
            scalar = PipelineScheduler(march, window=window) \
                .steady_state(stream)
            assert result == scalar

    def test_counters_and_stats_match_serial_batch(self):
        reqs = _requests()
        with ProfileScope("serial") as serial_counters:
            serial = schedule_batch(reqs)
        serial_stats = get_cache().stats()

        configure()
        clear_memos()
        clear_tables()
        with ProfileScope("sharded") as shard_counters:
            sharded = schedule_batch_sharded(reqs, max_workers=3)
        assert sharded == serial
        assert shard_counters.as_dict() == serial_counters.as_dict()
        assert get_cache().stats() == serial_stats

    def test_effective_mode_reported(self):
        reqs = _requests()
        schedule_batch_sharded(reqs, cache=False, max_workers=3)
        assert last_effective_mode() == "process"
        schedule_batch_sharded(reqs, cache=False, mode="serial")
        assert last_effective_mode() == "serial"


class TestShardedShortCircuits:
    def test_empty_batch(self):
        assert schedule_batch_sharded([]) == []

    def test_single_job_runs_serially(self):
        tc = get_toolchain("fujitsu")
        compiled = compile_loop(build_loop("simple"), tc, A64FX)
        results = schedule_batch_sharded(
            [(A64FX, compiled.stream)] * 3, cache=False)
        assert last_effective_mode() == "serial"  # one unique lane
        assert results[0] == results[1] == results[2]

    def test_one_worker_runs_serially(self):
        reqs = _requests()
        sharded = schedule_batch_sharded(reqs, cache=False, max_workers=1)
        assert last_effective_mode() == "serial"
        clear_memos()
        clear_tables()
        assert sharded == schedule_batch(reqs, cache=False)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            schedule_batch_sharded(_requests(), mode="fleet")


class TestPoolDowngrade:
    def test_warns_and_falls_back_to_threads(self, monkeypatch):
        def _no_fork(*args, **kwargs):
            raise OSError("no fork in sandbox")

        monkeypatch.setattr(
            "repro.engine.sweep.ProcessPoolExecutor", _no_fork)
        reqs = _requests()
        serial = schedule_batch(reqs, cache=False)
        clear_memos()
        clear_tables()
        with pytest.warns(PoolDowngradeWarning):
            sharded = schedule_batch_sharded(
                reqs, cache=False, max_workers=3)
        assert last_effective_mode() == "thread"
        assert sharded == serial


class TestDivergenceAcrossShards:
    def test_divergence_propagates(self, monkeypatch):
        monkeypatch.setattr(PipelineScheduler, "MAX_CYCLES", 50.0)
        reqs = _requests()
        with pytest.raises(ScheduleDivergence):
            schedule_batch_sharded(reqs, cache=False, max_workers=3)

    def test_divergence_pickles_by_field(self):
        tc = get_toolchain("fujitsu")
        compiled = compile_loop(build_loop("simple"), tc, A64FX)
        exc = ScheduleDivergence(
            compiled.stream, 24, stuck_index=7,
            n_body=len(compiled.stream.body))
        clone = pickle.loads(pickle.dumps(exc))
        assert isinstance(clone, ScheduleDivergence)
        assert clone.args == exc.args
        for field in ("label", "window", "stuck_index", "stuck_iteration",
                      "stuck_position", "stuck_mnemonic"):
            assert getattr(clone, field) == getattr(exc, field)


class TestShardRouting:
    """Profitability routing: small pools/batches run the serial path."""

    def test_plan_serial_below_min_jobs(self):
        from repro.engine.shard import SHARD_MIN_JOBS, plan_shards

        assert plan_shards(0) == ("serial", 1)
        assert plan_shards(SHARD_MIN_JOBS - 1, max_workers=4) == \
            ("serial", 1)

    def test_plan_explicit_workers_force_sharding(self):
        from repro.engine.shard import plan_shards

        assert plan_shards(9, max_workers=3) == ("sharded", 3)
        # workers never exceed the unique-lane count
        assert plan_shards(4, max_workers=8) == ("sharded", 4)

    def test_plan_auto_mode_caps_by_cpu_and_lane_share(self, monkeypatch):
        import repro.engine.shard as shard_mod
        from repro.engine.shard import (
            SHARD_MIN_JOBS_PER_WORKER,
            plan_shards,
        )

        monkeypatch.setattr(shard_mod.os, "cpu_count", lambda: 1)
        assert plan_shards(100) == ("serial", 1)  # 1-core pools only lose
        monkeypatch.setattr(shard_mod.os, "cpu_count", lambda: 8)
        assert plan_shards(SHARD_MIN_JOBS_PER_WORKER - 1) == ("serial", 1)
        routing, workers = plan_shards(4 * SHARD_MIN_JOBS_PER_WORKER)
        assert routing == "sharded"
        assert workers == 4

    def test_serial_route_taken_and_reported(self):
        from repro.engine.shard import last_shard_plan

        tc = get_toolchain("fujitsu")
        compiled = compile_loop(build_loop("simple"), tc, A64FX)
        reqs = [(A64FX, compiled.stream, w) for w in (None, 8)]
        serial = schedule_batch(reqs, cache=False)
        clear_memos()
        clear_tables()
        sharded = schedule_batch_sharded(reqs, cache=False, max_workers=3)
        assert sharded == serial
        plan = last_shard_plan()
        assert plan["routing"] == "serial"
        assert plan["workers"] == 1
        assert plan["jobs"] == 2
        assert last_effective_mode() == "serial"

    def test_sharded_route_reported(self):
        from repro.engine.shard import last_shard_plan

        schedule_batch_sharded(_requests(), cache=False, max_workers=3)
        plan = last_shard_plan()
        assert plan["routing"] == "sharded"
        assert plan["workers"] == 3
        assert plan["jobs"] >= 4
