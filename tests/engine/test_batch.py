"""Golden equivalence and wiring tests for the batched SoA engine.

:func:`repro.engine.batch.schedule_batch` is a pure optimization: one
array-stepped batch over many (march, stream, window) points must be
**bit-exact** against the event-driven scheduler and (at 1e-9 relative)
against the frozen seed implementation in
:mod:`repro.engine._reference` — results, ``pipeline.*`` counter
payloads, and schedule-cache statistics included.  The full Fig. 1/2
catalog crossed with every toolchain rides through a single batch call
here, plus dedup/cache semantics, sweep routing, observer records and
the error paths.
"""

import pytest

from repro.compilers.codegen import compile_loop
from repro.compilers.toolchains import TOOLCHAINS
from repro.engine._reference import ReferenceScheduler
from repro.engine.batch import clear_tables, schedule_batch
from repro.engine.cache import (
    cached_schedule,
    configure,
    get_cache,
    march_fingerprint,
    stream_fingerprint,
)
from repro.engine.scheduler import (
    PipelineScheduler,
    ScheduleDivergence,
    add_schedule_observer,
    clear_memos,
    remove_schedule_observer,
    schedule_on,
)
from repro.engine.sweep import run_sweep
from repro.kernels.catalog import SUITE_KERNEL_NAMES
from repro.machine.isa import Instruction, InstructionStream, Op
from repro.machine.microarch import A64FX, SKYLAKE_6140
from repro.perf.counters import ProfileScope
from repro.validate.schedule import ScheduleInvariantChecker

RTOL = 1e-9

#: the full Fig. 1 loop-variant and Fig. 2 math-kernel catalog, crossed
#: with all five toolchains — the same suite the benchmark times
POINTS = [(loop, tc) for loop in SUITE_KERNEL_NAMES for tc in TOOLCHAINS]


def _march_for(tc_name):
    return SKYLAKE_6140 if TOOLCHAINS[tc_name].target == "x86" else A64FX


def _stream_for(loop, tc_name):
    return compile_loop(
        build_kernel(loop), TOOLCHAINS[tc_name], _march_for(tc_name)
    ).stream


def build_kernel(name):
    from repro.kernels.catalog import build_kernel as _build

    return _build(name)


def _suite_requests():
    return [(_march_for(tc), _stream_for(loop, tc)) for loop, tc in POINTS]


def assert_bit_exact(res, ref):
    """Batch vs event-driven: every field identical, label included."""
    assert res.cycles_per_iter == ref.cycles_per_iter
    assert res.ipc == ref.ipc
    assert res.elements_per_iter == ref.elements_per_iter
    assert res.instructions_per_iter == ref.instructions_per_iter
    assert res.bound == ref.bound
    assert res.label == ref.label
    assert res.pipe_occupancy == ref.pipe_occupancy


def assert_results_match(res, ref):
    """Batch vs the seed scheduler: 1e-9 relative, like the golden suite."""
    assert res.cycles_per_iter == pytest.approx(
        ref.cycles_per_iter, rel=RTOL)
    assert res.ipc == pytest.approx(ref.ipc, rel=RTOL)
    assert res.elements_per_iter == ref.elements_per_iter
    assert res.instructions_per_iter == ref.instructions_per_iter
    assert res.bound == ref.bound
    assert res.label == ref.label
    for pipe, occ in ref.pipe_occupancy.items():
        assert res.pipe_occupancy[pipe] == pytest.approx(
            occ, rel=RTOL, abs=RTOL)


@pytest.fixture(autouse=True)
def fresh_state():
    """Isolate every test from cache/memo state built up elsewhere."""
    configure()
    clear_memos()
    clear_tables()
    yield
    configure()


class TestBatchGoldenEquivalence:
    def test_full_suite_bit_exact_vs_event_driven(self):
        """One batch over the whole catalog == per-point fast scheduler."""
        results = schedule_batch(_suite_requests(), cache=False)
        assert len(results) == len(POINTS)
        for (loop, tc), res in zip(POINTS, results):
            ref = PipelineScheduler(_march_for(tc)).steady_state(
                _stream_for(loop, tc))
            assert_bit_exact(res, ref)

    def test_full_suite_matches_seed_reference(self):
        """The same batch also reproduces the frozen seed scheduler."""
        results = schedule_batch(_suite_requests(), cache=False)
        for (loop, tc), res in zip(POINTS, results):
            ref = ReferenceScheduler(_march_for(tc)).steady_state(
                _stream_for(loop, tc))
            assert_results_match(res, ref)

    def test_windowed_requests_bit_exact(self):
        """Explicit (and mixed) windows replicate the scalar scheduler."""
        march = _march_for("fujitsu")
        stream = _stream_for("predicate", "fujitsu")
        requests = [(march, stream, w) for w in (1, 2, 8, 32, None)]
        results = schedule_batch(requests, cache=False)
        for (_, _, w), res in zip(requests, results):
            ref = PipelineScheduler(march, window=w).steady_state(stream)
            assert_bit_exact(res, ref)

    @pytest.mark.parametrize("tc", list(TOOLCHAINS))
    def test_counter_payload_identical(self, tc):
        """pipeline.* emissions match the scalar path bit-for-bit."""
        march = _march_for(tc)
        for loop in ("gather", "sqrt"):
            stream = _stream_for(loop, tc)
            with ProfileScope("scalar") as scalar:
                PipelineScheduler(march).steady_state(stream)
            with ProfileScope("batched") as batched:
                schedule_batch([(march, stream)], cache=False)
            assert batched.as_dict() == scalar.as_dict()

    def test_issue_slot_identity_holds(self):
        """issue_slots.total == used + stalled on the batched path."""
        march = _march_for("arm")
        stream = _stream_for("simple", "arm")
        with ProfileScope("batched") as counters:
            schedule_batch([(march, stream)], cache=False)
        c = counters.as_dict()
        assert (c["pipeline.issue_slots.total"]
                == c["pipeline.issue_slots.used"]
                + c["pipeline.issue_slots.stalled"])


class TestBatchCacheSemantics:
    def test_cache_stats_match_sequential_path(self):
        """One batch produces the same hit/miss/entry counts as running
        schedule_on over the same points in the same order."""
        requests = _suite_requests()
        for march, stream in requests:
            schedule_on(march, stream)
        sequential = get_cache().stats()
        configure()
        schedule_batch(requests)
        batched = get_cache().stats()
        assert batched == sequential

    def test_warm_replay_bit_exact(self):
        """A second identical batch is all cache hits, same results."""
        requests = _suite_requests()
        cold = schedule_batch(requests)
        misses_after_cold = get_cache().stats()["misses"]
        warm = schedule_batch(requests)
        stats = get_cache().stats()
        assert stats["misses"] == misses_after_cold  # no new simulations
        for a, b in zip(cold, warm):
            assert_bit_exact(b, a)

    def test_cache_hit_emissions_match_scalar_hit(self):
        march = _march_for("gnu")
        stream = _stream_for("scatter", "gnu")
        cached_schedule(march, stream)  # prime via the scalar front
        with ProfileScope("scalar-hit") as scalar:
            cached_schedule(march, stream)
        with ProfileScope("batch-hit") as batch:
            schedule_batch([(march, stream)])
        assert batch.as_dict() == scalar.as_dict()

    def test_duplicates_simulated_once_and_counted_as_hits(self):
        """N copies of one point: one miss, N-1 hits, identical labeled
        results."""
        march = _march_for("cray")
        stream = _stream_for("simple", "cray")
        results = schedule_batch([(march, stream)] * 5)
        assert get_cache().stats()["misses"] == 1.0
        assert get_cache().stats()["hits"] == 4.0
        ref = PipelineScheduler(march).steady_state(stream)
        for res in results:
            assert_bit_exact(res, ref)

    def test_label_dedup_shares_one_simulation(self):
        """Streams differing only by label share one entry but keep
        their own labels, like the content-addressed scalar cache."""
        march = _march_for("intel")
        base = _stream_for("predicate", "intel")
        from dataclasses import replace

        other = replace(base, label="relabeled-twin")
        res_a, res_b = schedule_batch([(march, base), (march, other)])
        assert get_cache().stats()["misses"] == 1.0
        assert res_a.label == base.label
        assert res_b.label == "relabeled-twin"
        assert res_a.cycles_per_iter == res_b.cycles_per_iter

    def test_cache_false_leaves_cache_untouched(self):
        march = _march_for("arm")
        stream = _stream_for("simple", "arm")
        schedule_batch([(march, stream)], cache=False)
        stats = get_cache().stats()
        assert stats["entries"] == stats["hits"] == stats["misses"] == 0.0

    def test_env_kill_switch_honored(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULE_CACHE", "off")
        march = _march_for("arm")
        stream = _stream_for("simple", "arm")
        res = schedule_batch([(march, stream)])[0]
        assert get_cache().stats()["entries"] == 0.0
        assert_bit_exact(
            res, PipelineScheduler(march).steady_state(stream))

    def test_entry_reusable_by_scalar_front(self):
        """Entries stored by the batch are served to cached_schedule."""
        march = _march_for("fujitsu")
        stream = _stream_for("gather", "fujitsu")
        batch_res = schedule_batch([(march, stream)])[0]
        key = (march_fingerprint(march, march.window),
               stream_fingerprint(stream))
        assert get_cache().lookup(key) is not None
        assert_bit_exact(cached_schedule(march, stream), batch_res)


class TestBatchSweepRouting:
    def test_forced_batch_rows_match_scalar_rows(self):
        serial = run_sweep(POINTS, mode="serial", batch=False)
        configure()
        clear_memos()
        batched = run_sweep(POINTS, mode="serial", batch=True)
        assert batched == serial

    def test_sweep_counters_and_stats_match(self):
        with ProfileScope("scalar") as scalar:
            run_sweep(POINTS, mode="serial", batch=False)
        scalar_stats = get_cache().stats()
        configure()
        clear_memos()
        with ProfileScope("batched") as batched:
            run_sweep(POINTS, mode="serial", batch=True)
        assert batched.as_dict() == scalar.as_dict()
        assert get_cache().stats() == scalar_stats

    def test_mixed_tier_sweep(self):
        """ECM points interleave with batched engine points in order."""
        points = [("simple", "gnu", None, "ecm"),
                  ("predicate", "gnu"),
                  ("sqrt", "arm", None, "ecm"),
                  ("gather", "fujitsu")]
        scalar = run_sweep(points, mode="serial", batch=False)
        configure()
        clear_memos()
        rows = run_sweep(points, mode="serial", batch=True)
        assert rows == scalar
        assert [r["tier"] for r in rows] == ["ecm", "engine",
                                             "ecm", "engine"]

    def test_env_kill_switch_forces_scalar_path(self, monkeypatch):
        """REPRO_BATCH_SCHEDULE=off: rows still correct (scalar path)."""
        monkeypatch.setenv("REPRO_BATCH_SCHEDULE", "off")
        rows = run_sweep(POINTS[:10], mode="serial")
        ref = run_sweep(POINTS[:10], mode="serial", batch=False)
        assert rows == ref


class TestBatchObservers:
    def test_invariant_checker_passes_on_batch(self):
        """Strict schedule-invariant replay over batch-recorded events."""
        with ScheduleInvariantChecker(strict=True) as checker:
            schedule_batch(_suite_requests(), cache=False)
        assert checker.schedules_checked > 0
        assert checker.violations == []

    def test_records_dispatched_per_unique_job(self):
        records = []
        add_schedule_observer(records.append)
        try:
            march = _march_for("gnu")
            stream = _stream_for("simple", "gnu")
            schedule_batch([(march, stream)] * 3, cache=False)
        finally:
            remove_schedule_observer(records.append)
        assert len(records) == 1  # duplicates share one simulation
        rec = records[0]
        assert rec.march is march
        assert rec.issues  # issue events were captured
        assert_bit_exact(
            rec.result, PipelineScheduler(march).steady_state(stream))


class TestBatchErrors:
    def test_empty_request_list(self):
        assert schedule_batch([]) == []

    def test_bad_window_rejected(self):
        march = _march_for("gnu")
        stream = _stream_for("simple", "gnu")
        with pytest.raises(ValueError, match="window"):
            schedule_batch([(march, stream, 0)])

    def test_empty_stream_rejected(self):
        empty = InstructionStream(body=[], elements_per_iter=1,
                                  label="empty")
        with pytest.raises(ValueError, match="empty"):
            schedule_batch([(A64FX, empty)])

    def test_divergence_raised_like_scalar(self, monkeypatch):
        """A non-converging lane raises the same ScheduleDivergence."""
        monkeypatch.setattr(PipelineScheduler, "MAX_CYCLES", 50.0)
        stuck = InstructionStream(
            body=[
                Instruction(Op.FMA, "acc", ("x", "acc"), carried=True,
                            tag="fma-chain", latency_override=30.0),
                Instruction(Op.FADD, "t", ("acc",), tag="consume"),
            ],
            elements_per_iter=8,
            label="divergence-probe",
        )
        with pytest.raises(ScheduleDivergence):
            schedule_batch([(A64FX, stuck)], cache=False)

    def test_healthy_lanes_unaffected_by_budgeted_stepping(self):
        """Lanes of wildly different lengths still all converge."""
        requests = [(_march_for("gnu"), _stream_for("simple", "gnu")),
                    (_march_for("arm"), _stream_for("recip", "arm")),
                    (_march_for("cray"), _stream_for("sqrt", "cray"))]
        results = schedule_batch(requests, cache=False)
        for (march, stream), res in zip(requests, results):
            assert_bit_exact(
                res, PipelineScheduler(march).steady_state(stream))
