"""Golden equivalence: every fast path must reproduce the seed scheduler.

The event-driven core, the steady-state extrapolation, the schedule
cache, and the parallel sweep runner are pure optimizations — the
contract (enforced here at 1e-9 relative, in practice bit-exact) is that
``ScheduleResult`` and the emitted ``pipeline.*`` counters are unchanged
from the preserved seed implementation in
:mod:`repro.engine._reference`.
"""

import pytest

from repro.compilers.codegen import compile_loop
from repro.compilers.toolchains import TOOLCHAINS
from repro.engine._reference import ReferenceScheduler
from repro.engine.cache import cached_schedule, configure, get_cache
from repro.engine.scheduler import PipelineScheduler
from repro.engine.sweep import run_sweep
from repro.kernels.loops import LOOP_NAMES, build_loop
from repro.machine.microarch import A64FX, SKYLAKE_6140
from repro.perf.counters import ProfileScope

RTOL = 1e-9

#: all Fig. 1 loop variants plus two Fig. 2 math kernels (a cheap one
#: and the FSQRT blocking case), crossed with all five toolchains
KERNELS = LOOP_NAMES + ("sqrt", "exp")
POINTS = [(loop, tc) for loop in KERNELS for tc in TOOLCHAINS]


def _march_for(tc_name):
    return SKYLAKE_6140 if TOOLCHAINS[tc_name].target == "x86" else A64FX


def _stream_for(loop, tc_name):
    return compile_loop(
        build_loop(loop), TOOLCHAINS[tc_name], _march_for(tc_name)
    ).stream


def assert_results_match(res, ref):
    assert res.cycles_per_iter == pytest.approx(
        ref.cycles_per_iter, rel=RTOL)
    assert res.ipc == pytest.approx(ref.ipc, rel=RTOL)
    assert res.elements_per_iter == ref.elements_per_iter
    assert res.instructions_per_iter == ref.instructions_per_iter
    assert res.bound == ref.bound
    assert res.label == ref.label
    for pipe, occ in ref.pipe_occupancy.items():
        assert res.pipe_occupancy[pipe] == pytest.approx(
            occ, rel=RTOL, abs=RTOL)


@pytest.fixture(autouse=True)
def fresh_cache():
    """Isolate every test from cache state built up elsewhere."""
    configure()
    yield
    configure()


@pytest.mark.parametrize("loop,tc", POINTS, ids=[f"{l}-{t}" for l, t in POINTS])
class TestGoldenEquivalence:
    def test_fresh_event_driven(self, loop, tc):
        """Event core + extrapolation vs the seed per-cycle scan."""
        march, stream = _march_for(tc), _stream_for(loop, tc)
        ref = ReferenceScheduler(march).steady_state(stream)
        res = PipelineScheduler(march).steady_state(stream)
        assert_results_match(res, ref)

    def test_extrapolation_off(self, loop, tc):
        """The pure event core (no period skipping) also matches."""
        march, stream = _march_for(tc), _stream_for(loop, tc)
        ref = ReferenceScheduler(march).steady_state(stream)
        res = PipelineScheduler(
            march, extrapolate=False).steady_state(stream)
        assert_results_match(res, ref)

    def test_cached(self, loop, tc):
        """Cold fill and warm hit both match the seed."""
        march, stream = _march_for(tc), _stream_for(loop, tc)
        ref = ReferenceScheduler(march).steady_state(stream)
        assert_results_match(cached_schedule(march, stream), ref)  # miss
        assert_results_match(cached_schedule(march, stream), ref)  # hit

    def test_counter_payload_matches_seed(self, loop, tc):
        """pipeline.* counters: fresh fast path, cached hit and the seed
        scheduler all emit the same values."""
        march, stream = _march_for(tc), _stream_for(loop, tc)
        with ProfileScope("ref") as ref_counters:
            ReferenceScheduler(march).steady_state(stream)
        with ProfileScope("fast") as fast_counters:
            PipelineScheduler(march).steady_state(stream)
        cached_schedule(march, stream)  # prime
        with ProfileScope("hit") as hit_counters:
            cached_schedule(march, stream)
        expected = ref_counters.as_dict()
        assert fast_counters.as_dict() == pytest.approx(expected, rel=RTOL)
        hit_pipeline = {
            k: v for k, v in hit_counters.as_dict().items()
            if k.startswith("pipeline.")
        }
        assert hit_pipeline == pytest.approx(expected, rel=RTOL)


class TestParallelEquivalence:
    def test_parallel_sweep_matches_serial(self):
        serial = run_sweep(POINTS, mode="serial")
        get_cache().clear()
        parallel = run_sweep(POINTS, mode="thread", max_workers=4)
        assert len(serial) == len(parallel) == len(POINTS)
        for s, p in zip(serial, parallel):
            assert s["loop"] == p["loop"]
            assert s["toolchain"] == p["toolchain"]
            assert p["cycles_per_iter"] == pytest.approx(
                s["cycles_per_iter"], rel=RTOL)
            assert p["bound"] == s["bound"]

    def test_parallel_rows_match_reference(self):
        rows = run_sweep(POINTS, mode="thread", max_workers=4)
        for (loop, tc), row in zip(POINTS, rows):
            march = _march_for(tc)
            ref = ReferenceScheduler(march).steady_state(
                _stream_for(loop, tc))
            assert row["cycles_per_iter"] == pytest.approx(
                ref.cycles_per_iter, rel=RTOL)


class TestCounterIdentityOnFastPaths:
    """pipeline.issue_slots.total == used + stalled holds exactly."""

    def _assert_identity(self, counters):
        assert (
            counters["pipeline.issue_slots.total"]
            == counters["pipeline.issue_slots.used"]
            + counters["pipeline.issue_slots.stalled"]
        )

    @pytest.mark.parametrize("tc", list(TOOLCHAINS))
    def test_fresh_and_cached(self, tc):
        march, stream = _march_for(tc), _stream_for("gather", tc)
        with ProfileScope("fresh") as fresh:
            PipelineScheduler(march).steady_state(stream)
        self._assert_identity(fresh)
        cached_schedule(march, stream)
        with ProfileScope("hit") as hit:
            cached_schedule(march, stream)
        self._assert_identity(hit)

    def test_parallel_sweep_totals(self):
        """Totals merged from parallel workers equal the serial totals
        exactly (same additions, same order)."""
        points = [(loop, tc) for loop in ("simple", "sqrt")
                  for tc in TOOLCHAINS]
        with ProfileScope("serial") as serial:
            run_sweep(points, mode="serial")
        get_cache().clear()
        with ProfileScope("parallel") as par:
            run_sweep(points, mode="thread", max_workers=3)
        self._assert_identity(par)

        def pipeline_only(counters):
            return {k: v for k, v in counters.as_dict().items()
                    if k.startswith("pipeline.")}

        # schedule_cache.hit/miss splits may differ under racing workers;
        # the pipeline.* totals must be bit-identical to the serial run
        assert pipeline_only(par) == pipeline_only(serial)
