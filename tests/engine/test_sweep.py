"""Tests for the parallel sweep runner."""

import pytest

from repro.compilers.cache import configure_compile_cache, get_compile_cache
from repro.engine.cache import configure, get_cache
from repro.engine.sweep import (
    BATCH_MIN_POINTS,
    PoolDowngradeWarning,
    SweepPoint,
    batch_min_points,
    last_effective_mode,
    map_schedules,
    run_sweep,
)
from repro.perf.counters import ProfileScope, emit


@pytest.fixture(autouse=True)
def fresh_cache():
    configure()
    configure_compile_cache()
    yield
    configure()
    configure_compile_cache()


def _emit_task(item):
    emit("sweep_test.calls", 1.0)
    emit("sweep_test.value", float(item))
    return item * 2


class TestMapSchedules:
    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_results_in_order(self, mode):
        items = list(range(8))
        assert map_schedules(_emit_task, items, mode=mode) == [
            2 * i for i in items
        ]

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            map_schedules(_emit_task, [1], mode="fleet")

    @pytest.mark.parametrize("mode", ["serial", "thread"])
    def test_counter_totals_exact(self, mode):
        items = list(range(10))
        with ProfileScope("sweep") as counters:
            map_schedules(_emit_task, items, mode=mode, max_workers=3)
        assert counters["sweep_test.calls"] == float(len(items))
        assert counters["sweep_test.value"] == float(sum(items))

    def test_nested_scopes_both_receive_merged_counters(self):
        with ProfileScope("outer") as outer:
            with ProfileScope("inner") as inner:
                map_schedules(_emit_task, [1, 2, 3], mode="thread")
        assert inner["sweep_test.calls"] == 3.0
        assert outer["sweep_test.calls"] == 3.0

    def test_worker_emissions_do_not_leak_live(self):
        """Thread workers emit into task scopes, not the caller's —
        everything arrives exactly once, via the deterministic merge."""
        with ProfileScope("caller") as counters:
            map_schedules(_emit_task, list(range(20)), mode="thread",
                          max_workers=8)
        assert counters["sweep_test.calls"] == 20.0


class TestRunSweep:
    def test_rows_have_schedule_stats(self):
        rows = run_sweep([("simple", "fujitsu"), ("sqrt", "gnu")])
        assert [r["loop"] for r in rows] == ["simple", "sqrt"]
        for row in rows:
            assert row["cycles_per_iter"] > 0
            assert row["cycles_per_element"] > 0
            assert row["model_cycles_per_element"] > 0
            assert row["ipc"] > 0
            assert row["bound"]
            assert row["march"]

    def test_accepts_sweep_points_and_windows(self):
        narrow, wide = run_sweep([
            SweepPoint("exp", "fujitsu", window=1),
            SweepPoint("exp", "fujitsu"),
        ])
        assert narrow["window"] == 1
        assert narrow["cycles_per_iter"] >= wide["cycles_per_iter"]

    def test_intel_points_target_skylake(self):
        (row,) = run_sweep([("simple", "intel")])
        assert "6140" in row["march"] or "skylake" in row["march"].lower()

    def test_thread_mode_matches_serial(self):
        points = [(loop, tc) for loop in ("simple", "gather", "exp")
                  for tc in ("fujitsu", "gnu", "intel")]
        serial = run_sweep(points, mode="serial")
        threaded = run_sweep(points, mode="thread", max_workers=4)
        assert serial == threaded


class TestMachineAxis:
    """SweepPoint.machine retargets a point at a catalog preset."""

    def test_machine_points_target_the_preset(self):
        (row,) = run_sweep([SweepPoint("simple", "gnu", machine="rvv")])
        assert row["machine"] == "rvv"
        assert row["march"] == "RVV-HBM"

    def test_rows_without_machine_have_no_machine_key(self):
        """Pre-machine-axis rows must stay byte-identical (row equality
        checks elsewhere depend on it)."""
        (row,) = run_sweep([("simple", "fujitsu")])
        assert "machine" not in row

    def test_machine_changes_the_prediction(self):
        default, rvv = run_sweep([
            SweepPoint("sqrt", "gnu"),
            SweepPoint("sqrt", "gnu", machine="rvv"),
        ])
        # RVV pipelines fsqrt (28/14) where the A64FX blocks (134/134)
        assert rvv["cycles_per_element"] < default["cycles_per_element"]

    def test_ecm_tier_uses_the_machine_system(self):
        (row,) = run_sweep(
            [SweepPoint("simple", "gnu", tier="ecm", machine="rvv")])
        assert row["machine"] == "rvv"
        assert row["cycles_per_element"] > 0

    def test_batched_matches_per_point_with_machines(self):
        """Mixed machine/default points through the batch path equal
        the per-point path row for row."""
        points = [
            SweepPoint(loop, tc, tier=tier, machine=machine)
            for loop in ("simple", "sqrt")
            for tc, machine in (("fujitsu", None), ("gnu", "rvv"),
                                ("fujitsu", "a64fx"), ("intel", None))
            for tier in ("engine", "ecm")
        ]
        per_point = run_sweep(points, batch=False)
        configure()
        configure_compile_cache()
        batched = run_sweep(points, batch=True)
        assert batched == per_point

    def test_core_only_machine_ecm_raises(self):
        """thunderx2 has no node description: the ECM tier needs one."""
        with pytest.raises(ValueError, match="core-only"):
            run_sweep([SweepPoint("simple", "gnu", tier="ecm",
                                  machine="thunderx2")])

    def test_core_only_machine_engine_tier_works(self):
        (row,) = run_sweep([SweepPoint("simple", "gnu",
                                       machine="thunderx2")])
        assert row["march"] == "ThunderX2"


def _mixed_grid():
    """An engine+ecm grid large enough to route through the batch."""
    return [
        SweepPoint(loop, tc, window=win, tier=tier)
        for loop in ("simple", "gather", "exp")
        for tc in ("fujitsu", "intel")
        for win in (None, 24)
        for tier in ("engine", "ecm")
    ]


class TestProcessSweep:
    def test_rows_match_serial_per_point(self):
        points = _mixed_grid()
        serial = run_sweep(points, mode="serial", batch=False)
        configure()
        configure_compile_cache()
        sharded = run_sweep(points, mode="process", max_workers=3)
        assert sharded == serial

    def test_counters_and_stats_merge_exactly(self):
        """Sharded process sweep == serial per-point sweep, counter for
        counter and schedule-cache stat for stat."""
        points = _mixed_grid()
        with ProfileScope("serial") as serial_counters:
            run_sweep(points, mode="serial", batch=False)
        serial_stats = get_cache().stats()
        configure()
        configure_compile_cache()
        with ProfileScope("sharded") as shard_counters:
            run_sweep(points, mode="process", max_workers=3)
        assert shard_counters.as_dict() == serial_counters.as_dict()
        assert get_cache().stats() == serial_stats

    def test_downgrade_warns_and_still_matches(self, monkeypatch):
        def _no_fork(*args, **kwargs):
            raise OSError("no fork in sandbox")

        points = _mixed_grid()
        serial = run_sweep(points, mode="serial", batch=False)
        configure()
        configure_compile_cache()
        monkeypatch.setattr(
            "repro.engine.sweep.ProcessPoolExecutor", _no_fork)
        with pytest.warns(PoolDowngradeWarning):
            rows = run_sweep(points, mode="process", max_workers=3)
        assert last_effective_mode() == "thread"
        assert rows == serial


class TestBatchRouting:
    def test_default_threshold(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH_MIN_POINTS", raising=False)
        assert batch_min_points() == BATCH_MIN_POINTS

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_MIN_POINTS", "2")
        assert batch_min_points() == 2
        # a two-point sweep now routes through the batch: the compile
        # cache (only the batched path consults it) sees the points
        run_sweep([("simple", "fujitsu"), ("gather", "fujitsu")])
        assert get_compile_cache().stats()["misses"] == 2.0

    def test_large_override_keeps_per_point(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_MIN_POINTS", "1000")
        run_sweep(_mixed_grid())
        assert get_compile_cache().stats()["misses"] == 0.0

    @pytest.mark.parametrize("raw", ["abc", "0", "-3", "2.5"])
    def test_invalid_env_value_raises(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_BATCH_MIN_POINTS", raw)
        with pytest.raises(ValueError, match="REPRO_BATCH_MIN_POINTS"):
            run_sweep([("simple", "fujitsu")] * 4)

    def test_kill_switch_keeps_per_point(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_SCHEDULE", "off")
        rows = run_sweep(_mixed_grid())
        assert get_compile_cache().stats()["misses"] == 0.0
        monkeypatch.delenv("REPRO_BATCH_SCHEDULE")
        configure()
        assert run_sweep(_mixed_grid()) == rows

    def test_batch_true_forces_small_sweeps(self):
        points = [("simple", "fujitsu"), ("gather", "intel")]
        reference = run_sweep(points, batch=False)
        configure()
        rows = run_sweep(points, batch=True)
        assert get_compile_cache().stats()["misses"] == 2.0
        assert rows == reference
