"""Tests for the parallel sweep runner."""

import pytest

from repro.engine.cache import configure
from repro.engine.sweep import SweepPoint, map_schedules, run_sweep
from repro.perf.counters import ProfileScope, emit


@pytest.fixture(autouse=True)
def fresh_cache():
    configure()
    yield
    configure()


def _emit_task(item):
    emit("sweep_test.calls", 1.0)
    emit("sweep_test.value", float(item))
    return item * 2


class TestMapSchedules:
    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_results_in_order(self, mode):
        items = list(range(8))
        assert map_schedules(_emit_task, items, mode=mode) == [
            2 * i for i in items
        ]

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            map_schedules(_emit_task, [1], mode="fleet")

    @pytest.mark.parametrize("mode", ["serial", "thread"])
    def test_counter_totals_exact(self, mode):
        items = list(range(10))
        with ProfileScope("sweep") as counters:
            map_schedules(_emit_task, items, mode=mode, max_workers=3)
        assert counters["sweep_test.calls"] == float(len(items))
        assert counters["sweep_test.value"] == float(sum(items))

    def test_nested_scopes_both_receive_merged_counters(self):
        with ProfileScope("outer") as outer:
            with ProfileScope("inner") as inner:
                map_schedules(_emit_task, [1, 2, 3], mode="thread")
        assert inner["sweep_test.calls"] == 3.0
        assert outer["sweep_test.calls"] == 3.0

    def test_worker_emissions_do_not_leak_live(self):
        """Thread workers emit into task scopes, not the caller's —
        everything arrives exactly once, via the deterministic merge."""
        with ProfileScope("caller") as counters:
            map_schedules(_emit_task, list(range(20)), mode="thread",
                          max_workers=8)
        assert counters["sweep_test.calls"] == 20.0


class TestRunSweep:
    def test_rows_have_schedule_stats(self):
        rows = run_sweep([("simple", "fujitsu"), ("sqrt", "gnu")])
        assert [r["loop"] for r in rows] == ["simple", "sqrt"]
        for row in rows:
            assert row["cycles_per_iter"] > 0
            assert row["cycles_per_element"] > 0
            assert row["model_cycles_per_element"] > 0
            assert row["ipc"] > 0
            assert row["bound"]
            assert row["march"]

    def test_accepts_sweep_points_and_windows(self):
        narrow, wide = run_sweep([
            SweepPoint("exp", "fujitsu", window=1),
            SweepPoint("exp", "fujitsu"),
        ])
        assert narrow["window"] == 1
        assert narrow["cycles_per_iter"] >= wide["cycles_per_iter"]

    def test_intel_points_target_skylake(self):
        (row,) = run_sweep([("simple", "intel")])
        assert "6140" in row["march"] or "skylake" in row["march"].lower()

    def test_thread_mode_matches_serial(self):
        points = [(loop, tc) for loop in ("simple", "gather", "exp")
                  for tc in ("fujitsu", "gnu", "intel")]
        serial = run_sweep(points, mode="serial")
        threaded = run_sweep(points, mode="thread", max_workers=4)
        assert serial == threaded
