"""Tests for the roofline helpers."""

import pytest

from repro.engine.roofline import Roofline
from repro.machine.systems import get_system


class TestRoofline:
    def test_ridge(self):
        r = Roofline(peak_gflops=100.0, bw_gbs=10.0)
        assert r.ridge_intensity == pytest.approx(10.0)

    def test_attainable_below_ridge_is_bandwidth_bound(self):
        r = Roofline(peak_gflops=100.0, bw_gbs=10.0)
        assert r.attainable_gflops(1.0) == pytest.approx(10.0)

    def test_attainable_above_ridge_is_peak(self):
        r = Roofline(peak_gflops=100.0, bw_gbs=10.0)
        assert r.attainable_gflops(100.0) == pytest.approx(100.0)

    def test_time_is_max_of_components(self):
        r = Roofline(peak_gflops=100.0, bw_gbs=10.0)
        t = r.time_seconds(flops=100e9, nbytes=5e9)
        assert t == pytest.approx(1.0)  # compute 1 s > memory 0.5 s
        t = r.time_seconds(flops=1e9, nbytes=100e9)
        assert t == pytest.approx(10.0)

    def test_fraction_of_peak(self):
        r = Roofline(peak_gflops=100.0, bw_gbs=10.0)
        assert r.fraction_of_peak(71.0) == pytest.approx(0.71)

    def test_validation(self):
        with pytest.raises(ValueError):
            Roofline(peak_gflops=0, bw_gbs=10)
        r = Roofline(100, 10)
        with pytest.raises(ValueError):
            r.attainable_gflops(0)
        with pytest.raises(ValueError):
            r.time_seconds(-1, 0)


class TestSystemRooflines:
    def test_node_roofline_ookami(self):
        r = Roofline.for_node(get_system("ookami"))
        assert r.peak_gflops == pytest.approx(2764.8, rel=1e-3)
        assert r.bw_gbs == pytest.approx(1024.0)

    def test_core_roofline_uses_stream_cap(self):
        s = get_system("ookami")
        r = Roofline.for_core(s)
        assert r.bw_gbs == pytest.approx(s.hierarchy.stream_bw_core_gbs)
        assert r.peak_gflops == pytest.approx(57.6)

    def test_a64fx_node_ridge_near_2p7(self):
        # 2765 GF / 1024 GB/s ~ 2.7 flop/byte: the HBM design point
        r = Roofline.for_node(get_system("ookami"))
        assert 2.0 < r.ridge_intensity < 3.5

    def test_skylake_node_ridge_much_higher(self):
        r = Roofline.for_node(get_system("skylake"))
        assert r.ridge_intensity > 5.0
