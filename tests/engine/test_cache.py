"""Tests for the content-addressed schedule cache."""

import json

import pytest

from repro.compilers.codegen import compile_loop
from repro.compilers.toolchains import TOOLCHAINS
from repro.engine.cache import (
    ScheduleCache,
    cached_schedule,
    configure,
    get_cache,
    march_fingerprint,
    stream_fingerprint,
)
from repro.engine.scheduler import PipelineScheduler
from repro.kernels.loops import build_loop
from repro.machine.isa import Instruction, InstructionStream, Op
from repro.machine.microarch import A64FX, SKYLAKE_6140, THUNDERX2
from repro.perf.counters import ProfileScope


@pytest.fixture(autouse=True)
def fresh_cache():
    configure()
    yield
    configure()


def _stream(label="k1", n=3):
    body = [Instruction(Op.FMA, f"t{i}", ("x", "y")) for i in range(n)]
    return InstructionStream(body=body, elements_per_iter=8, label=label)


class TestFingerprints:
    def test_stream_fingerprint_ignores_label(self):
        a = _stream(label="fujitsu-loop")
        b = _stream(label="gnu-loop")
        assert stream_fingerprint(a) == stream_fingerprint(b)

    def test_stream_fingerprint_sees_content(self):
        base = _stream()
        assert stream_fingerprint(base) != stream_fingerprint(_stream(n=4))
        tweaked = InstructionStream(
            body=list(base.body[:-1])
            + [Instruction(Op.FMA, "t2", ("x", "y"), latency_override=1.0)],
            elements_per_iter=8, label=base.label,
        )
        assert stream_fingerprint(base) != stream_fingerprint(tweaked)

    def test_march_fingerprint_distinguishes_machines_and_windows(self):
        fps = {
            march_fingerprint(A64FX, A64FX.window),
            march_fingerprint(A64FX, 8),
            march_fingerprint(SKYLAKE_6140, SKYLAKE_6140.window),
            march_fingerprint(THUNDERX2, THUNDERX2.window),
        }
        assert len(fps) == 4


class TestCachedSchedule:
    def test_hit_matches_fresh_and_is_relabeled(self):
        a = _stream(label="first")
        b = _stream(label="second")  # same content, different label
        fresh = PipelineScheduler(A64FX).steady_state(a)
        first = cached_schedule(A64FX, a)
        second = cached_schedule(A64FX, b)
        assert first.cycles_per_iter == fresh.cycles_per_iter
        assert second.cycles_per_iter == fresh.cycles_per_iter
        assert first.label == "first"
        assert second.label == "second"
        stats = get_cache().stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1

    def test_cross_toolchain_reuse_on_identical_streams(self):
        """Toolchains emitting identical streams share one entry."""
        loop = build_loop("simple")
        streams = {
            tc.name: compile_loop(loop, tc, A64FX).stream
            for name, tc in TOOLCHAINS.items() if tc.target == "sve"
        }
        for stream in streams.values():
            cached_schedule(A64FX, stream)
        fingerprints = {stream_fingerprint(s) for s in streams.values()}
        assert len(get_cache()) == len(fingerprints) < len(streams)

    def test_window_is_part_of_the_key(self):
        s = _stream()
        narrow = cached_schedule(A64FX, s, window=1)
        wide = cached_schedule(A64FX, s)
        assert narrow.cycles_per_iter >= wide.cycles_per_iter
        assert get_cache().stats()["misses"] == 2

    def test_disabled_via_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULE_CACHE", "off")
        s = _stream()
        res = cached_schedule(A64FX, s)
        assert res.cycles_per_iter > 0
        assert len(get_cache()) == 0

    def test_hit_emits_cache_counters(self):
        s = _stream()
        with ProfileScope("c") as counters:
            cached_schedule(A64FX, s)
            cached_schedule(A64FX, s)
        assert counters["schedule_cache.misses"] == 1.0
        assert counters["schedule_cache.hits"] == 1.0
        # the schedule payload was emitted on both paths
        assert counters["pipeline.schedules"] == 2.0


class TestLRU:
    def test_eviction_keeps_capacity(self):
        cache = ScheduleCache(capacity=2)
        for i in range(5):
            cache.store((f"m{i}", "s"), _entry_for(i))
        assert len(cache) == 2
        assert cache.lookup(("m0", "s")) is None
        assert cache.lookup(("m4", "s")) is not None

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ScheduleCache(capacity=0)


def _entry_for(i):
    from repro.engine.cache import _Entry

    result = PipelineScheduler(A64FX).steady_state(_stream(n=1 + i % 2))
    return _Entry(result=result, counters={"pipeline.schedules": 1.0})


class TestDiskLayer:
    def test_round_trip_across_cache_instances(self, tmp_path):
        s = _stream(label="disk-test")
        configure(disk_dir=tmp_path)
        cold = cached_schedule(A64FX, s)
        files = list(tmp_path.glob("*.json"))
        assert len(files) == 1
        doc = json.loads(files[0].read_text())
        assert doc["format"] == "repro.schedule-cache/1"

        # a fresh process-equivalent: empty memory, same disk dir
        configure(disk_dir=tmp_path)
        warm = cached_schedule(A64FX, s)
        assert get_cache().stats()["disk_hits"] == 1
        assert warm.cycles_per_iter == cold.cycles_per_iter
        assert warm.ipc == cold.ipc
        assert warm.bound == cold.bound
        assert warm.pipe_occupancy == dict(cold.pipe_occupancy)
        assert warm.label == "disk-test"

    def test_disk_hit_replays_counters(self, tmp_path):
        s = _stream()
        configure(disk_dir=tmp_path)
        with ProfileScope("cold") as cold:
            cached_schedule(A64FX, s)
        configure(disk_dir=tmp_path)
        with ProfileScope("warm") as warm:
            cached_schedule(A64FX, s)
        cold_pipeline = {k: v for k, v in cold.as_dict().items()
                         if k.startswith("pipeline.")}
        warm_pipeline = {k: v for k, v in warm.as_dict().items()
                         if k.startswith("pipeline.")}
        assert warm_pipeline == cold_pipeline

    def test_corrupt_entry_recomputes(self, tmp_path):
        s = _stream()
        configure(disk_dir=tmp_path)
        cached_schedule(A64FX, s)
        for f in tmp_path.glob("*.json"):
            f.write_text("{not json")
        configure(disk_dir=tmp_path)
        res = cached_schedule(A64FX, s)
        assert res.cycles_per_iter > 0
        assert get_cache().stats()["disk_hits"] == 0

    def test_clear_drops_disk_entries(self, tmp_path):
        configure(disk_dir=tmp_path)
        cached_schedule(A64FX, _stream())
        assert list(tmp_path.glob("*.json"))
        dropped = get_cache().clear(disk=True)
        assert dropped >= 2  # memory entry + disk file
        assert not list(tmp_path.glob("*.json"))

    def test_env_dir_enables_disk_layer(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        import repro.engine.cache as cache_mod

        monkeypatch.setattr(cache_mod, "_CACHE", None)
        cached_schedule(A64FX, _stream())
        assert list(tmp_path.glob("*.json"))


class TestDiskStats:
    def test_cold_miss_counts_disk_miss_and_write(self, tmp_path):
        configure(disk_dir=tmp_path)
        cached_schedule(A64FX, _stream())
        stats = get_cache().stats()
        assert stats["misses"] == 1
        assert stats["disk_misses"] == 1
        assert stats["disk_writes"] == 1
        assert stats["disk_hits"] == 0

    def test_fresh_cache_same_dir_counts_disk_hit(self, tmp_path):
        s = _stream()
        configure(disk_dir=tmp_path)
        cached_schedule(A64FX, s)
        configure(disk_dir=tmp_path)
        cached_schedule(A64FX, s)
        stats = get_cache().stats()
        assert stats["disk_hits"] == 1
        assert stats["disk_misses"] == 0
        assert stats["disk_writes"] == 0

    def test_memory_hit_touches_no_disk_counters(self, tmp_path):
        s = _stream()
        configure(disk_dir=tmp_path)
        cached_schedule(A64FX, s)
        cached_schedule(A64FX, s)  # memory hit
        stats = get_cache().stats()
        assert stats["hits"] == 1
        assert stats["disk_misses"] == 1
        assert stats["disk_writes"] == 1

    def test_clear_resets_disk_counters(self, tmp_path):
        configure(disk_dir=tmp_path)
        cached_schedule(A64FX, _stream())
        get_cache().clear()
        stats = get_cache().stats()
        assert stats["disk_hits"] == stats["disk_misses"] == 0
        assert stats["disk_writes"] == 0

    def test_memory_only_cache_keeps_disk_counters_zero(self):
        configure()
        cached_schedule(A64FX, _stream())
        cached_schedule(A64FX, _stream())
        stats = get_cache().stats()
        assert stats["disk_hits"] == stats["disk_misses"] == 0
        assert stats["disk_writes"] == 0
