"""Property-based fuzzing of the pipeline scheduler with random streams."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.scheduler import PipelineScheduler, schedule_on
from repro.machine.isa import Instruction, InstructionStream, Op
from repro.machine.microarch import A64FX, SKYLAKE_6140

_OPS = st.sampled_from([
    Op.FADD, Op.FMUL, Op.FMA, Op.FMOV, Op.IADD, Op.ILOGIC, Op.PERM,
    Op.VLOAD, Op.VSTORE, Op.SALU, Op.FCVT, Op.FSEL,
])


@st.composite
def streams(draw):
    n = draw(st.integers(min_value=1, max_value=20))
    body = []
    names = []
    for i in range(n):
        op = draw(_OPS)
        # sources: subset of previously produced names (forward dataflow)
        n_srcs = draw(st.integers(min_value=0, max_value=min(2, len(names))))
        srcs = tuple(
            draw(st.sampled_from(names)) for _ in range(n_srcs)
        ) if names else ()
        dest = f"v{i}" if op not in (Op.VSTORE,) else ""
        carried = draw(st.booleans()) and dest and srcs == (dest,)
        body.append(Instruction(op, dest, srcs, carried=bool(carried)))
        if dest:
            names.append(dest)
    return InstructionStream(body=body, elements_per_iter=8)


class TestSchedulerFuzz:
    @given(streams())
    @settings(max_examples=80, deadline=None)
    def test_always_converges_positive(self, stream):
        res = schedule_on(A64FX, stream)
        assert 0 < res.cycles_per_iter < 1e5
        assert res.instructions_per_iter == len(stream)

    @given(streams())
    @settings(max_examples=40, deadline=None)
    def test_issue_width_lower_bound(self, stream):
        res = schedule_on(A64FX, stream)
        assert res.cycles_per_iter >= len(stream) / A64FX.issue_width - 1e-9

    @given(streams())
    @settings(max_examples=40, deadline=None)
    def test_occupancy_bounded(self, stream):
        res = schedule_on(A64FX, stream)
        for occ in res.pipe_occupancy.values():
            assert -1e-9 <= occ <= 1.0 + 1e-9

    @given(streams())
    @settings(max_examples=40, deadline=None)
    def test_machines_both_schedule(self, stream):
        a = schedule_on(A64FX, stream)
        s = schedule_on(SKYLAKE_6140, stream)
        assert a.cycles_per_iter > 0 and s.cycles_per_iter > 0

    @given(streams(), st.integers(min_value=1, max_value=64))
    @settings(max_examples=40, deadline=None)
    def test_window_monotonicity(self, stream, w):
        """A larger window helps, up to greedy-order noise.

        Greedy issue is not strictly monotone in the window: a wider
        window can let a younger instruction steal a pipe slot from an
        older critical one (observed up to ~12% on adversarial mixes,
        e.g. w=40 -> 3.125 vs w=104 -> 3.5 cyc/iter).  The protected
        property is that widening the window never causes a blow-up."""
        small = PipelineScheduler(A64FX, window=w).steady_state(stream)
        big = PipelineScheduler(A64FX, window=w + 64).steady_state(stream)
        assert big.cycles_per_iter <= small.cycles_per_iter * 1.25

    @given(streams())
    @settings(max_examples=30, deadline=None)
    def test_duplicating_body_at_most_doubles(self, stream):
        """Unrolling (renamed copy) roughly preserves per-element cost.

        Greedy list scheduling is not exactly monotone (issue-order
        effects of a few percent are possible), so the bound is loose;
        the property being protected is that unrolling never *blows up*
        the per-element cost."""
        renamed = [
            Instruction(
                i.op,
                i.dest + "_b" if i.dest else "",
                tuple(s + "_b" for s in i.srcs),
                carried=i.carried,
            )
            for i in stream.body
        ]
        doubled = InstructionStream(
            body=list(stream.body) + renamed,
            elements_per_iter=stream.elements_per_iter * 2,
        )
        one = schedule_on(A64FX, stream)
        two = schedule_on(A64FX, doubled)
        assert two.cycles_per_element <= one.cycles_per_element * 1.3
