"""Tests for the pipeline scheduler — analytic cross-checks.

Each test builds a small instruction stream whose steady-state cost can
be derived by hand (port bound, issue bound, dependence bound, blocking
units, ROB window limit) and checks the simulator agrees.
"""

import pytest

from repro.engine.scheduler import PipelineScheduler, schedule_on
from repro.machine.isa import Instruction, InstructionStream, Op
from repro.machine.microarch import A64FX, SKYLAKE_6140


def _stream(instrs, epi=8, label="t"):
    return InstructionStream(body=list(instrs), elements_per_iter=epi,
                             label=label)


class TestPortBound:
    def test_independent_fmas_fill_both_pipes(self):
        # 8 independent FMAs per iteration: 2 FP pipes -> 4 cycles/iter
        body = [Instruction(Op.FMA, f"t{i}") for i in range(8)]
        res = schedule_on(A64FX, _stream(body))
        assert res.cycles_per_iter == pytest.approx(4.0, rel=0.15)

    def test_single_pipe_op_serializes(self):
        # PERM runs only on FLB: 4 perms -> >= 4 cycles/iter
        body = [Instruction(Op.PERM, f"p{i}") for i in range(4)]
        res = schedule_on(A64FX, _stream(body))
        assert res.cycles_per_iter >= 4.0 - 1e-9

    def test_issue_width_floor(self):
        # 8 scalar ALU ops at issue width 4 need >= 2 cycles even though
        # the ALU pipes could absorb them faster
        body = [Instruction(Op.SALU, f"i{i}") for i in range(8)]
        res = schedule_on(A64FX, _stream(body, epi=1))
        assert res.cycles_per_iter >= 2.0 - 1e-9


class TestBlockingUnits:
    def test_fsqrt_costs_its_full_latency(self):
        # one blocking FSQRT per iteration: 134 cycles each, back-to-back
        body = [Instruction(Op.FSQRT, "s", ("x",))]
        res = schedule_on(A64FX, _stream(body))
        assert res.cycles_per_iter == pytest.approx(134.0, rel=0.05)
        assert res.cycles_per_element == pytest.approx(134.0 / 8, rel=0.05)

    def test_skylake_sqrt_is_cheaper(self):
        body = [Instruction(Op.FSQRT, "s", ("x",))]
        a64 = schedule_on(A64FX, _stream(body))
        skl = schedule_on(SKYLAKE_6140, _stream(body))
        # pipelined divider vs blocking unit: big gap per cycle
        assert a64.cycles_per_iter > 4 * skl.cycles_per_iter


class TestDependenceChains:
    def test_loop_carried_chain_serializes(self):
        # sum += x: one 9-cycle FMA per iteration, fully serial
        body = [Instruction(Op.FMA, "sum", ("sum", "x"), carried=True)]
        res = schedule_on(A64FX, _stream(body))
        assert res.cycles_per_iter == pytest.approx(9.0, rel=0.1)

    def test_unrolled_accumulators_overlap(self):
        # two independent accumulators halve the recurrence cost
        body = [
            Instruction(Op.FMA, "s0", ("s0", "x"), carried=True),
            Instruction(Op.FMA, "s1", ("s1", "y"), carried=True),
        ]
        res = schedule_on(A64FX, _stream(body, epi=16))
        assert res.cycles_per_iter == pytest.approx(9.0, rel=0.1)
        assert res.cycles_per_element == pytest.approx(9.0 / 16, rel=0.1)

    def test_intra_iteration_chain_pipelines_across_iterations(self):
        # a 3-FMA chain (27 cycles deep) but independent iterations:
        # steady state is port/issue bound, far below 27
        body = [
            Instruction(Op.FMA, "a", ("x",)),
            Instruction(Op.FMA, "b", ("a",)),
            Instruction(Op.FMA, "c", ("b",)),
        ]
        res = schedule_on(A64FX, _stream(body))
        assert res.cycles_per_iter < 9.0

    def test_window_limits_overlap(self):
        """A deep chain with a small ROB window costs chain*body/window —
        the mechanism behind the Section IV exp cycle counts."""
        chain_len = 8
        body = [Instruction(Op.FMA, "t0", ("x",))]
        body += [
            Instruction(Op.FMA, f"t{i}", (f"t{i - 1}",))
            for i in range(1, chain_len)
        ]
        wide = PipelineScheduler(A64FX, window=256).steady_state(_stream(body))
        narrow = PipelineScheduler(A64FX, window=16).steady_state(_stream(body))
        assert narrow.cycles_per_iter > 1.5 * wide.cycles_per_iter

    def test_unissued_producer_blocks_consumer(self):
        # regression for the ready-at-zero bug: the store must wait for
        # the full chain, so CPI >> 1 at a tiny window
        body = [
            Instruction(Op.VLOAD, "x"),
            Instruction(Op.FMA, "y", ("x",)),
            Instruction(Op.VSTORE, "", ("y",)),
        ]
        res = PipelineScheduler(A64FX, window=3).steady_state(_stream(body))
        # window 3 = one iteration in flight: the next load can only
        # enter once the previous one retires -> CPI = load latency (11),
        # far above the ~1.5-cycle port bound a ready-at-zero bug yields
        assert res.cycles_per_iter == pytest.approx(11.0, rel=0.1)


class TestOverridesAndMisc:
    def test_call_override(self):
        body = [Instruction(Op.CALL, "y", ("x",), latency_override=32.0,
                            rtput_override=32.0)]
        res = schedule_on(A64FX, _stream(body, epi=1))
        assert res.cycles_per_iter == pytest.approx(32.0, rel=0.05)

    def test_fractional_rtput_amortizes(self):
        # rtput 1.2 stores should cost ~1.2 cycles each, not 2
        body = [
            Instruction(Op.VSTORE, "", ("x",), rtput_override=1.2)
            for _ in range(4)
        ]
        res = schedule_on(A64FX, _stream(body))
        assert res.cycles_per_iter == pytest.approx(4.8, rel=0.15)

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError):
            schedule_on(A64FX, _stream([]))

    def test_result_fields(self):
        body = [Instruction(Op.FMA, "t", ("x",))]
        res = schedule_on(A64FX, _stream(body))
        assert res.instructions_per_iter == 1
        assert res.ipc > 0
        assert res.bound in ("latency", "issue") or res.bound.startswith("pipe:")
        assert 0.0 <= max(res.pipe_occupancy.values()) <= 1.05

    def test_window_validation(self):
        with pytest.raises(ValueError):
            PipelineScheduler(A64FX, window=0)
