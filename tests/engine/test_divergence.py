"""Tests for the ScheduleDivergence convergence-failure path."""

import pytest

from repro.engine.scheduler import PipelineScheduler, ScheduleDivergence
from repro.machine.isa import Instruction, InstructionStream, Op
from repro.machine.microarch import A64FX


def _slow_chain(latency: float) -> InstructionStream:
    """A loop-carried FMA chain: 24 simulated iterations x latency."""
    return InstructionStream(
        body=[
            Instruction(Op.FMA, "acc", ("x", "acc"), carried=True,
                        tag="fma-chain", latency_override=latency),
            Instruction(Op.FADD, "t", ("acc",), tag="consume"),
        ],
        elements_per_iter=8,
        label="divergence-probe",
    )


class TestScheduleDivergence:
    def test_raised_beyond_max_cycles(self):
        # 24 iterations x 5e5 cycles of carried latency > MAX_CYCLES (1e7)
        with pytest.raises(ScheduleDivergence):
            PipelineScheduler(A64FX).steady_state(_slow_chain(5e5))

    def test_is_a_runtime_error(self):
        """Existing callers catching RuntimeError keep working."""
        with pytest.raises(RuntimeError):
            PipelineScheduler(A64FX).steady_state(_slow_chain(5e5))

    def test_names_stream_window_and_stuck_instruction(self):
        with pytest.raises(ScheduleDivergence) as exc_info:
            PipelineScheduler(A64FX, window=7).steady_state(_slow_chain(5e5))
        err = exc_info.value
        assert err.label == "divergence-probe"
        assert err.window == 7
        assert err.stuck_index >= 0
        assert err.stuck_position in (0, 1)
        assert err.stuck_mnemonic in ("fma-chain", "consume")
        message = str(err)
        assert "divergence-probe" in message
        assert "window=7" in message
        assert str(err.stuck_index) in message

    def test_max_cycles_is_tunable(self, monkeypatch):
        """MAX_CYCLES is a class attribute so tests/tools can tighten it."""
        monkeypatch.setattr(PipelineScheduler, "MAX_CYCLES", 50.0)
        with pytest.raises(ScheduleDivergence):
            PipelineScheduler(A64FX).steady_state(_slow_chain(30.0))

    def test_convergent_stream_unaffected(self):
        result = PipelineScheduler(A64FX).steady_state(_slow_chain(9.0))
        assert result.cycles_per_iter >= 9.0
