"""Tests for the issue-trace capture and pipeline diagram."""

import pytest

from repro.compilers.codegen import compile_loop
from repro.compilers.toolchains import FUJITSU
from repro.engine.scheduler import schedule_on
from repro.engine.trace import capture_trace, render_pipeline_diagram
from repro.kernels.loops import build_loop
from repro.machine.isa import Instruction, InstructionStream, Op, Pipe
from repro.machine.microarch import A64FX


@pytest.fixture(scope="module")
def exp_stream():
    return compile_loop(build_loop("exp"), FUJITSU, A64FX).stream


class TestCaptureTrace:
    def test_every_instruction_issues_once(self, exp_stream):
        events = capture_trace(A64FX, exp_stream, iterations=3)
        assert len(events) == 3 * len(exp_stream)
        assert len({e.index for e in events}) == len(events)

    def test_dependencies_respected(self, exp_stream):
        """A consumer never issues at or before its producer's issue when
        the producer has non-trivial latency."""
        events = {e.index: e for e in capture_trace(A64FX, exp_stream, 2)}
        body = exp_stream.body
        n = len(body)
        names = {}
        for d in sorted(events):
            ins = body[d % n]
            for src in ins.srcs:
                key = (d // n, src)
                if key in names:
                    assert events[d].cycle > names[key].cycle
            if ins.dest:
                names[(d // n, ins.dest)] = events[d]

    def test_pipes_legal(self, exp_stream):
        events = capture_trace(A64FX, exp_stream, 2)
        body = exp_stream.body
        for e in events:
            allowed = A64FX.timing(body[e.position].op).pipes
            assert e.pipe in allowed

    def test_issue_width_respected(self, exp_stream):
        events = capture_trace(A64FX, exp_stream, 4)
        per_cycle: dict[float, int] = {}
        for e in events:
            per_cycle[e.cycle] = per_cycle.get(e.cycle, 0) + 1
        assert max(per_cycle.values()) <= A64FX.issue_width

    def test_traced_cpi_matches_scheduler(self, exp_stream):
        """The tracing re-implementation must agree with the scheduler."""
        events = capture_trace(A64FX, exp_stream, iterations=24)
        n = len(exp_stream)
        last = {}
        for e in events:
            last[e.iteration] = max(last.get(e.iteration, 0.0), e.cycle)
        span = last[23] - last[7]
        traced_cpi = span / 16
        ref = schedule_on(A64FX, exp_stream).cycles_per_iter
        assert traced_cpi == pytest.approx(ref, rel=0.05)

    def test_validation(self, exp_stream):
        with pytest.raises(ValueError):
            capture_trace(A64FX, exp_stream, iterations=0)


class TestDiagram:
    def test_renders_busy_pipes_only(self, exp_stream):
        text = render_pipeline_diagram(A64FX, exp_stream)
        assert "fla" in text and "flb" in text
        assert "legend:" in text

    def test_blocking_op_occupies_pipe(self):
        stream = InstructionStream(
            body=[Instruction(Op.FSQRT, "y", ("x",), tag="fsqrt")],
            elements_per_iter=8, label="sqrt-only",
        )
        events = capture_trace(A64FX, stream, iterations=2)
        # second FSQRT waits the full 134-cycle blocking window
        assert events[1].cycle - events[0].cycle >= 134

    def test_dual_pipe_overlap_visible(self):
        body = [Instruction(Op.FMA, f"t{i}") for i in range(4)]
        stream = InstructionStream(body=body, elements_per_iter=8, label="fma4")
        events = capture_trace(A64FX, stream, iterations=1)
        by_cycle: dict[float, set] = {}
        for e in events:
            by_cycle.setdefault(e.cycle, set()).add(e.pipe)
        # some cycle uses both FP pipes
        assert any({Pipe.FLA, Pipe.FLB} <= pipes
                   for pipes in by_cycle.values())
