"""Tests for the OpenMP fork/join threading model."""

import pytest

from repro.engine.openmp import OpenMPModel, RuntimeTraits, WorkDecomposition
from repro.machine.numa import PagePlacement
from repro.machine.systems import get_system


@pytest.fixture()
def ookami_model() -> OpenMPModel:
    return OpenMPModel(get_system("ookami"), RuntimeTraits("test"))


@pytest.fixture()
def skylake_model() -> OpenMPModel:
    return OpenMPModel(get_system("skylake"), RuntimeTraits("test"))


def _compute_work(seconds=100.0, **kw):
    return WorkDecomposition(compute_serial_s=seconds, **kw)


class TestRuntimeTraits:
    def test_region_overhead_grows_with_threads(self):
        tr = RuntimeTraits("t", fork_join_us=2.0, barrier_us_log2=1.0)
        assert tr.region_overhead_s(1) == 0.0
        assert tr.region_overhead_s(16) > tr.region_overhead_s(2)

    def test_validation(self):
        with pytest.raises(ValueError):
            RuntimeTraits("t", fork_join_us=-1.0)
        with pytest.raises(ValueError):
            RuntimeTraits("t").region_overhead_s(0)


class TestAmdahl:
    def test_perfect_scaling_limit(self, ookami_model):
        work = _compute_work(parallel_fraction=1.0)
        run = ookami_model.run(work, 48)
        assert run.efficiency == pytest.approx(1.0, abs=0.02)

    def test_serial_fraction_caps_speedup(self, ookami_model):
        work = _compute_work(parallel_fraction=0.9)
        run = ookami_model.run(work, 48)
        # Amdahl: speedup <= 1 / (0.1 + 0.9/48) ~ 8.4
        assert run.speedup < 8.5

    def test_imbalance_slows(self, ookami_model):
        fast = ookami_model.run(_compute_work(imbalance=0.0), 48)
        slow = ookami_model.run(_compute_work(imbalance=0.3), 48)
        assert slow.seconds > fast.seconds

    def test_thread_bounds(self, ookami_model):
        with pytest.raises(ValueError):
            ookami_model.run(_compute_work(), 0)
        with pytest.raises(ValueError):
            ookami_model.run(_compute_work(), 49)


class TestClockDerating:
    def test_a64fx_clock_fixed(self, ookami_model):
        """The A64FX runs 1.8 GHz regardless of load — no derate."""
        one = ookami_model.run(_compute_work(parallel_fraction=1.0), 1)
        full = ookami_model.run(_compute_work(parallel_fraction=1.0), 48)
        assert full.seconds * 48 == pytest.approx(one.seconds, rel=0.03)

    def test_skylake_full_load_derates(self, skylake_model):
        """AVX-512 license clock: all-core runs lose the boost — the
        mechanism capping the paper's Fig. 6 efficiencies."""
        run = skylake_model.run(_compute_work(parallel_fraction=1.0), 36)
        assert run.efficiency < 0.75


class TestBandwidthSaturation:
    def test_memory_bound_saturates(self, ookami_model):
        work = _compute_work(seconds=10.0, contig_bytes=5e12)
        run48 = ookami_model.run(work, 48)
        assert run48.bound == "memory"
        # 5 TB over ~920 GB/s
        assert run48.memory_seconds == pytest.approx(5e12 / 920e9, rel=0.1)

    def test_placement_matters_for_memory_bound(self, ookami_model):
        work = _compute_work(seconds=10.0, contig_bytes=5e12)
        ft = ookami_model.run(work, 48, PagePlacement.FIRST_TOUCH)
        sd = ookami_model.run(work, 48, PagePlacement.SINGLE_DOMAIN)
        assert sd.seconds > 2 * ft.seconds

    def test_placement_irrelevant_for_compute_bound(self, ookami_model):
        work = _compute_work(seconds=100.0)
        ft = ookami_model.run(work, 48, PagePlacement.FIRST_TOUCH)
        sd = ookami_model.run(work, 48, PagePlacement.SINGLE_DOMAIN)
        assert sd.seconds == pytest.approx(ft.seconds)

    def test_random_bandwidth_derated_by_line_utilization(self, ookami_model):
        contig = ookami_model.aggregate_bw_gbs(48, PagePlacement.FIRST_TOUCH,
                                               "contig")
        random = ookami_model.aggregate_bw_gbs(48, PagePlacement.FIRST_TOUCH,
                                               "random")
        assert random < contig / 10  # 8 useful bytes per 256-byte line


class TestDefaultPlacement:
    def test_runtime_default_used_when_none(self):
        traits = RuntimeTraits(
            "fujitsu-like", default_placement=PagePlacement.SINGLE_DOMAIN
        )
        model = OpenMPModel(get_system("ookami"), traits)
        work = _compute_work(seconds=10.0, contig_bytes=5e12)
        default = model.run(work, 48)           # picks SINGLE_DOMAIN
        ft = model.run(work, 48, PagePlacement.FIRST_TOUCH)
        assert default.seconds > ft.seconds


class TestEfficiencyCurve:
    def test_monotone_nonincreasing(self, ookami_model):
        work = _compute_work(parallel_fraction=0.99, imbalance=0.1)
        eff = ookami_model.efficiency_curve(work, [1, 2, 4, 8, 16, 48])
        vals = [eff[p] for p in (1, 2, 4, 8, 16, 48)]
        assert all(a >= b - 1e-9 for a, b in zip(vals, vals[1:]))
        assert eff[1] == pytest.approx(1.0, abs=0.05)
