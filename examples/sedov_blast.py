#!/usr/bin/env python
"""LULESH's physics: the Sedov point blast with analytic answers.

Runs the real spherical Lagrangian hydrodynamics solver, prints the
shock trajectory against the Sedov-Taylor similarity law r_s ~ t^(2/5),
the energy bookkeeping, and the strong-shock density jump — the
'simplified Sedov blast problem with analytic answers' of Section VI.
Then exercises the actual LULESH hexahedral element kernels (Base vs
Vect variants of Table II) on a jittered 3-D mesh.

Run:  python examples/sedov_blast.py
"""

import time

import numpy as np

from repro.apps.lulesh.hexkernels import (
    hex_volumes_base,
    hex_volumes_vect,
    make_box_mesh,
)
from repro.apps.lulesh.hydro import GAMMA, SedovSpherical


def main() -> None:
    s = SedovSpherical(nzones=200)
    e0 = s.total_energy()
    print(f"Sedov blast: {s.nzones} Lagrangian shells, E0 = {e0:.4f}\n")

    print(f"{'t':>8} {'cycles':>8} {'r_shock':>9} {'r/t^0.4':>9} "
          f"{'rho_max':>8} {'E/E0':>8}")
    for t_end in (0.02, 0.04, 0.08, 0.16, 0.32):
        s.run(t_end)
        rs = s.shock_radius()
        print(f"{s.t:8.3f} {s.cycles:8d} {rs:9.4f} "
              f"{rs / s.t**0.4:9.4f} {np.max(s.rho):8.3f} "
              f"{s.total_energy() / e0:8.4f}")

    ts = np.array([0.02, 0.04, 0.08, 0.16, 0.32])
    # refit from a fresh run for a clean exponent estimate
    s2 = SedovSpherical(nzones=200)
    rs = []
    for t_end in ts:
        s2.run(t_end)
        rs.append(s2.shock_radius())
    slope = np.polyfit(np.log(ts), np.log(rs), 1)[0]
    print(f"\nfitted r_s ~ t^{slope:.3f}   (Sedov-Taylor: t^0.400)")
    jump = (GAMMA + 1) / (GAMMA - 1)
    print(f"peak compression {np.max(s2.rho):.2f} "
          f"(strong-shock limit {jump:.1f})\n")

    print("--- LULESH hex-element kernels: Base vs Vect (Table II) ---")
    coords, conn = make_box_mesh(16, jitter=0.3, seed=0)
    t0 = time.perf_counter()
    vb = hex_volumes_base(coords, conn)
    t_base = time.perf_counter() - t0
    t0 = time.perf_counter()
    vv = hex_volumes_vect(coords, conn)
    t_vect = time.perf_counter() - t0
    assert np.array_equal(vb, vv)
    print(f"  {conn.shape[0]} elements, total volume "
          f"{vv.sum():.12f} (exact: 1.0)")
    print(f"  Base (per-element loop) : {t_base * 1e3:8.2f} ms")
    print(f"  Vect (array program)    : {t_vect * 1e3:8.2f} ms  "
          f"({t_base / t_vect:.0f}x — why Table II has two columns)")


if __name__ == "__main__":
    main()
