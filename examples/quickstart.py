#!/usr/bin/env python
"""Quickstart: the out-of-the-box experience the paper studies.

Compile the paper's 'simple' loop (``y[i] = 2*x[i] + 3*x[i]*x[i]``) with
every toolchain model, print each vectorizer's report, and show modeled
runtimes relative to Skylake + Intel — a miniature Figure 1.

Run:  python examples/quickstart.py
"""

from repro._util import format_table
from repro.compilers.codegen import compile_loop
from repro.compilers.toolchains import TOOLCHAINS
from repro.compilers.vectorizer import vectorize
from repro.kernels.loops import build_loop
from repro.machine.microarch import A64FX, SKYLAKE_6140


def main() -> None:
    loop = build_loop("simple")
    print(f"Loop: {loop.name!r}, n = {loop.length} "
          "(L1-resident, like the paper's suite)\n")

    print("--- vectorizer reports (the -fopt-info / -Rpass experience) ---")
    for name, tc in TOOLCHAINS.items():
        print(vectorize(loop, tc))
    print()

    intel = compile_loop(loop, TOOLCHAINS["intel"], SKYLAKE_6140)
    t_skl = intel.cycles_per_element / SKYLAKE_6140.clock_ghz

    rows = []
    for name in ("fujitsu", "cray", "arm", "gnu"):
        compiled = compile_loop(loop, TOOLCHAINS[name], A64FX)
        t = compiled.cycles_per_element / A64FX.clock_ghz
        rows.append(
            {
                "toolchain": name,
                "machine": "A64FX @1.8GHz",
                "cycles/elem": round(compiled.cycles_per_element, 3),
                "ns/elem": round(t, 4),
                "vs skylake+icc": round(t / t_skl, 2),
            }
        )
    rows.append(
        {
            "toolchain": "intel",
            "machine": "Skylake @3.7GHz",
            "cycles/elem": round(intel.cycles_per_element, 3),
            "ns/elem": round(t_skl, 4),
            "vs skylake+icc": 1.0,
        }
    )
    print("--- modeled runtime (the paper's Figure 1 y-axis) ---")
    print(format_table(rows))
    print(
        "\nThe ~2x ratio is the 1.8 vs 3.7 GHz clock gap: 'the Fujitsu tool"
        "\nchain performance hovers at the factor of 2 expected from the"
        "\nratio of the clock speeds' (paper, Sec. III)."
    )


if __name__ == "__main__":
    main()
