#!/usr/bin/env python
"""Examine the generated code: the same loop under every toolchain.

"The small loops also permit examining and understanding the generated
code" (paper, Sec. III).  For the sqrt and recip loops — where Sec. III's
instruction-selection findings live — this prints each toolchain's
pseudo-assembly, the schedule, and the pipeline diagram, making the
20x/30x verdicts visible at the instruction level:

* Fujitsu/Cray: FRSQRTE/FRECPE estimate + pipelined Newton steps;
* GNU: the blocking FSQRT/FDIV (one instruction, 112-134 cycles);
* ARM v21: fixed reciprocal, still-blocking sqrt.

Run:  python examples/toolchain_shootout.py [loop]
"""

import sys

from repro.compilers.asm import render_compiled_loop
from repro.compilers.codegen import compile_loop
from repro.compilers.toolchains import TOOLCHAINS
from repro.engine.trace import render_pipeline_diagram
from repro.kernels.loops import build_loop
from repro.machine.microarch import A64FX, SKYLAKE_6140


def shootout(loop_name: str) -> None:
    loop = build_loop(loop_name)
    print(f"===== loop: {loop_name!r} =====\n")
    for tc_name in ("fujitsu", "cray", "arm", "gnu", "intel"):
        tc = TOOLCHAINS[tc_name]
        march = SKYLAKE_6140 if tc.target == "x86" else A64FX
        compiled = compile_loop(loop, tc, march)
        print(render_compiled_loop(compiled))
        print()

    print("--- pipeline diagram: fujitsu vs gnu on the A64FX ---")
    for tc_name in ("fujitsu", "gnu"):
        compiled = compile_loop(loop, TOOLCHAINS[tc_name], A64FX)
        print(render_pipeline_diagram(A64FX, compiled.stream, max_cycles=72))
        print()


def main() -> None:
    loop_name = sys.argv[1] if len(sys.argv) > 1 else "sqrt"
    shootout(loop_name)
    if len(sys.argv) <= 1:
        print("(pass a loop name for others: simple, predicate, gather,")
        print(" scatter, short_gather, short_scatter, recip, exp, sin, pow)")


if __name__ == "__main__":
    main()
