#!/usr/bin/env python
"""Regenerate every table and figure of the paper in one run.

Walks the experiment registry (Table I-III, Figures 1-9, the Section IV
exponential study) and prints each artifact as a plain-text table.  This
is the full evaluation section of 'A64FX performance: experience on
Ookami', regenerated from the models in a few seconds.

Run:  python examples/reproduce_paper.py [experiment-id ...]
      (no arguments = everything; ids: table1, fig1, fig2, sec4, fig3,
       fig4, fig5, fig6, table2, fig7, table3, fig8, fig9ab, fig9cd)
"""

import sys
import time

from repro.bench.harness import EXPERIMENTS
from repro.bench.report import render_experiment


def main(argv: list[str]) -> int:
    ids = argv or list(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}")
        print(f"available: {sorted(EXPERIMENTS)}")
        return 1
    t0 = time.perf_counter()
    for exp_id in ids:
        print(render_experiment(exp_id))
    print(f"regenerated {len(ids)} artifacts in "
          f"{time.perf_counter() - t0:.1f} s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
