#!/usr/bin/env python
"""Regenerate every table and figure of the paper in one run.

Walks the experiment registry (Table I-III, Figures 1-9, the Section IV
exponential study) and prints each artifact as a plain-text table.  This
is the full evaluation section of 'A64FX performance: experience on
Ookami', regenerated from the models in a few seconds.

Run:  python examples/reproduce_paper.py [--parallel] [experiment-id ...]
      (no arguments = everything; ids: table1, fig1, fig2, sec4, fig3,
       fig4, fig5, fig6, table2, fig7, table3, fig8, fig9ab, fig9cd)

``--parallel`` renders the experiments concurrently through the sweep
runner (:mod:`repro.engine.sweep`); output order is unchanged, and the
experiments share schedules through the content-addressed cache.
"""

import sys
import time

from repro.bench.harness import EXPERIMENTS
from repro.bench.report import render_experiment
from repro.engine.sweep import map_schedules


def main(argv: list[str]) -> int:
    parallel = "--parallel" in argv
    ids = [a for a in argv if a != "--parallel"] or list(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}")
        print(f"available: {sorted(EXPERIMENTS)}")
        return 1
    t0 = time.perf_counter()
    renders = map_schedules(
        render_experiment, ids, mode="thread" if parallel else "serial"
    )
    for text in renders:
        print(text)
    print(f"regenerated {len(ids)} artifacts in "
          f"{time.perf_counter() - t0:.1f} s"
          + (" (parallel)" if parallel else ""))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
