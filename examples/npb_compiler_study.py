#!/usr/bin/env python
"""The Section V study: NPB across compilers, threads and NUMA policies.

Two halves, like the package itself:

1. **Real numerics** — run the complete NPB EP and CG benchmarks at
   class S and check the *official* verification values (the same
   acceptance test the Fortran/C suites print SUCCESSFUL for).
2. **Paper-scale model** — regenerate Figure 3 (serial, per compiler),
   Figure 4 (full node, including the Fujitsu CMG-0 placement pathology
   and its first-touch fix) and the Figure 5/6 scaling curves.

Run:  python examples/npb_compiler_study.py
"""

from repro._util import format_table
from repro.bench.figures import fig3_npb_serial, fig4_npb_fullnode
from repro.compilers.toolchains import TOOLCHAINS
from repro.kernels.workload import parallel_run
from repro.machine.systems import get_system
from repro.npb.cg import run_cg
from repro.npb.ep import run_ep
from repro.npb.workloads import NPB_WORKLOADS


def main() -> None:
    print("--- real numerics: official NPB verification (class S) ---")
    ep = run_ep("S")
    print(f"  EP.S: sx={ep.sx:.12e} sy={ep.sy:.12e} -> "
          f"{'VERIFICATION SUCCESSFUL' if ep.verified else 'FAILED'}")
    cg = run_cg("S")
    print(f"  CG.S: zeta={cg.zeta:.13f}            -> "
          f"{'VERIFICATION SUCCESSFUL' if cg.verified else 'FAILED'}\n")

    print("--- Figure 3: class C serial runtime (s), modeled ---")
    rows = fig3_npb_serial()
    print(format_table(rows, columns=["bench", "toolchain", "seconds",
                                      "rel_icc"]))
    print("\n  paper: 'Intel ... outperforms all the compilers in A64FX by"
          "\n  a huge margin (from 1.6X to 5.5X)'; GCC best on 5 of 6\n")

    print("--- Figure 4: class C full-node runtime (s), modeled ---")
    rows = fig4_npb_fullnode()
    print(format_table(rows, columns=["bench", "config", "seconds"]))
    print("\n  note fujitsu vs fujitsu-first-touch on SP: the CMG-0"
          "\n  default placement squeezing 48 threads through one memory"
          "\n  controller, and the first-touch fix (paper, Sec. V)\n")

    print("--- Figures 5/6: parallel efficiency at selected thread counts ---")
    ook, skl = get_system("ookami"), get_system("skylake")
    header = f"{'bench':<6}" + "".join(f"{p:>8}" for p in (1, 8, 24, 48))
    print("  A64FX + GCC")
    print("  " + header)
    for bench, work in NPB_WORKLOADS.items():
        effs = [parallel_run(work, ook, TOOLCHAINS["gnu"], p).efficiency
                for p in (1, 8, 24, 48)]
        print(f"  {bench:<6}" + "".join(f"{e:8.2f}" for e in effs))
    print("  Skylake + icc")
    print("  " + header.replace("48", "36"))
    for bench, work in NPB_WORKLOADS.items():
        effs = [parallel_run(work, skl, TOOLCHAINS["intel"], p).efficiency
                for p in (1, 8, 24, 36)]
        print(f"  {bench:<6}" + "".join(f"{e:8.2f}" for e in effs))


if __name__ == "__main__":
    main()
