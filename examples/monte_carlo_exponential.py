#!/usr/bin/env python
"""The paper's teaching example: Monte Carlo integration of exp(-x).

Section III opens with a three-line Metropolis kernel that is 'completely
serial — it exposes nearly the full latency of most of the operations in
the loop'.  This example:

1. runs the *real* serial chain and the *real* vectorized independent-
   chains version (both estimate E[x] ~= 1.0 under exp(-x) on [0, 23]);
2. asks the machine model what each costs per sample on the A64FX,
   quantifying the restructuring payoff the paper teaches.

Run:  python examples/monte_carlo_exponential.py
"""

import time

from repro.engine.scheduler import schedule_on
from repro.kernels.mc import (
    mc_exp_integral_serial,
    mc_exp_integral_vectorized,
    mc_expected_mean,
    mc_serial_stream,
    mc_vector_stream,
)
from repro.machine.microarch import A64FX


def main() -> None:
    exact = mc_expected_mean()
    print(f"exact E[x] under exp(-x) on [0, 23]: {exact:.6f}\n")

    t0 = time.perf_counter()
    serial = mc_exp_integral_serial(200_000, seed=1)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    vector = mc_exp_integral_vectorized(2_000_000, seed=1)
    t_vector = time.perf_counter() - t0

    print("numeric results (both are the same algorithm):")
    print(f"  serial chain     : {serial:.4f}  "
          f"({200_000 / t_serial / 1e6:.2f} Msamples/s here)")
    print(f"  lockstep chains  : {vector:.4f}  "
          f"({2_000_000 / t_vector / 1e6:.2f} Msamples/s here)\n")

    s = schedule_on(A64FX, mc_serial_stream())
    v = schedule_on(A64FX, mc_vector_stream())
    print("A64FX machine-model cost per sample:")
    print(f"  naive serial loop  : {s.cycles_per_element:7.1f} cycles "
          f"(bound: {s.bound})")
    print(f"  vector lockstep    : {v.cycles_per_element:7.2f} cycles "
          f"(bound: {v.bound})")
    speedup = s.cycles_per_element / v.cycles_per_element
    print(f"  single-core speedup: {speedup:6.1f}x")
    print(f"  x48 threads        : {speedup * 48:6.0f}x  "
          "<- the class of gap the paper's 500x GPU anecdote dramatizes")


if __name__ == "__main__":
    main()
