#!/usr/bin/env python
"""The complete HPC Challenge suite: real kernels + the Section VII models.

The paper "concentrate[s] on matrix-matrix multiplication (DGEMM), HPL,
and Fast Fourier Transformation (FFT)"; HPCC has seven components.  This
example runs all of them:

* the four the models reproduce from the paper (DGEMM, HPL, FFT, plus
  STREAM which underwrites the bandwidth narrative), and
* the remaining components (RandomAccess/GUPS, PTRANS) completing the
  suite — each with its *real* numeric kernel executed and verified
  locally before the modeled A64FX/Skylake rates are printed.

Run:  python examples/hpcc_suite.py
"""

from repro._util import format_table
from repro.bench.harness import run_experiment
from repro.hpcc.dgemm import dgemm_blocked
from repro.hpcc.fft import fft_benchmark
from repro.hpcc.hpl import hpl_benchmark
from repro.hpcc.ptrans import transpose_blocked
from repro.hpcc.randomaccess import run_randomaccess
from repro.hpcc.stream import run_stream

import numpy as np


def main() -> None:
    print("=== real kernels, executed and verified on this host ===")
    rng = np.random.default_rng(0)
    a = rng.standard_normal((192, 192))
    b = rng.standard_normal((192, 192))
    ok = np.allclose(dgemm_blocked(a, b, 64), a @ b, atol=1e-10)
    print(f"  DGEMM (blocked 192x192)      : {'OK' if ok else 'FAIL'}")

    hpl = hpl_benchmark(n=256)
    print(f"  HPL (n=256, pivoted LU)      : "
          f"{'OK' if hpl.passed else 'FAIL'} "
          f"(scaled residual {hpl.scaled_residual:.3f})")

    fft = fft_benchmark(log2n=14)
    print(f"  FFT (2^14, radix-2)          : "
          f"{'OK' if fft.max_error < 1e-12 else 'FAIL'} "
          f"(vs numpy {fft.max_error:.1e})")

    stream = run_stream(n=1_000_000)
    print(f"  STREAM (1M elems)            : "
          f"{'OK' if stream.verified else 'FAIL'} "
          f"(triad here: {stream.rates_gbs['triad']:.1f} GB/s)")

    gups = run_randomaccess(log2_table=14)
    print(f"  RandomAccess (2^14 table)    : "
          f"{'OK' if gups.verified else 'FAIL'} "
          f"(XOR replay restores table)")

    t = rng.standard_normal((300, 200))
    ok = np.array_equal(transpose_blocked(t, 64), t.T)
    print(f"  PTRANS (blocked transpose)   : {'OK' if ok else 'FAIL'}\n")

    print("=== modeled rates (the Section VII landscape) ===")
    for exp_id, title in (
        ("fig8", "DGEMM per core (Figure 8)"),
        ("fig9ab", "HPL (Figures 9A/9B)"),
        ("fig9cd", "FFT (Figures 9C/9D)"),
        ("stream", "STREAM Triad"),
        ("gups", "RandomAccess"),
        ("ptrans", "PTRANS"),
    ):
        rows = run_experiment(exp_id)
        print(f"--- {title} ---")
        print(format_table(rows))
        print()


if __name__ == "__main__":
    main()
