#!/usr/bin/env python
"""Walkthrough of Section IV: designing the FEXPA exponential kernel.

Reproduces the paper's design study end to end:

* the plain 13-term algorithm vs the FEXPA 5-term one — real numerics,
  measured in ULPs against libm;
* Horner vs Estrin polynomial evaluation — both numerically and through
  the pipeline model ('the Estrin form ... is slightly faster');
* loop structure: VLA vs fixed-width vs unrolled ('Unrolling once
  decreased this to 1.9 cycles/element');
* the 'corrected last FMA' refinement trading ~0.25 cycles/element for
  1-2 ULP accuracy.

Run:  python examples/exp_kernel_design.py
"""

import numpy as np

from repro._util import format_table
from repro.bench.figures import sec4_exp_study
from repro.mathlib.exp import exp_fexpa, exp_plain, fexpa_emulate
from repro.mathlib.ulp import max_ulp_error, mean_ulp_error


def main() -> None:
    print("--- the FEXPA instruction, emulated bit-exactly ---")
    for m, i in ((0, 0), (0, 32), (3, 16), (-2, 48)):
        bits = np.array([((m + 1023) << 6) | i])
        val = fexpa_emulate(bits)[0]
        print(f"  FEXPA(m={m:+d}, i={i:2d}) = 2^({m} + {i}/64) = {val:.12f}")
    print()

    rng = np.random.default_rng(0)
    x = rng.uniform(-700, 700, 1_000_000)
    exact = np.exp(x)
    print("--- accuracy over one million points in [-700, 700] ---")
    variants = {
        "plain 13-term (Estrin)": exp_plain(x),
        "FEXPA 5-term (Estrin)": exp_fexpa(x),
        "FEXPA 5-term (Horner)": exp_fexpa(x, scheme="horner"),
        "FEXPA + corrected last FMA": exp_fexpa(x, refined=True),
    }
    for name, got in variants.items():
        print(f"  {name:<28} max {max_ulp_error(got, exact):4.1f} ulp, "
              f"mean {mean_ulp_error(got, exact):5.3f} ulp")
    print("\n  (paper: 'about 6 ulp precision, which is good enough for"
          "\n   many applications, but better is possible ... by correcting"
          "\n   the last FMA operation')\n")

    print("--- cycles per element on the A64FX model ---")
    rows = sec4_exp_study(ulp_samples=100_000)
    print(format_table(
        rows, columns=["impl", "cycles_per_elem", "max_ulp", "bound"]
    ))
    print("\npaper reference points: GNU serial ~32, ARM 6, Cray 4.2,"
          "\nFujitsu 2.1, Intel/Skylake 1.6 cycles per element")


if __name__ == "__main__":
    main()
