"""Legacy setup shim: lets ``pip install -e .`` work offline with older
setuptools (no ``wheel`` package available).  All metadata lives in
``pyproject.toml``."""

from setuptools import setup

setup()
